type action = Forward | Drop | Delay of int64 | Remark of int

type middleware = Observation.t -> action

type counters = {
  mutable delivered : int;
  mutable dropped_no_route : int;
  mutable dropped_ttl : int;
  mutable dropped_policy : int;
  mutable dropped_queue : int;
  mutable dropped_link_down : int;
  mutable dropped_node_down : int;
  mutable dropped_shed : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  route_policy : Routing.policy;
  mutable routing : Routing.t;
  links : (int * int, Link.t) Hashtbl.t;
  handlers : (int, handler) Hashtbl.t;
  middlewares : (int, middleware list) Hashtbl.t;
  taps : (int, (Observation.t -> unit) list) Hashtbl.t;
  busy : (int, int64) Hashtbl.t;
  down_nodes : (int, unit) Hashtbl.t;
  ctrs : counters;
  c_delivered : Obs.Counter.t;
  (* Drop counters pre-resolved at creation: [drop] may run on a worker
     domain under a sharded engine (the fluid tier's spill packets), and
     registry resolution mutates a hashtable — only the bumps are
     atomic. *)
  c_drops : Obs.Counter.t array; (* indexed by drop_index *)
}

and handler = t -> Topology.node_id -> Packet.t -> unit

let engine t = t.engine
let topology t = t.topo
let counters t = t.ctrs

let drop_reasons =
  [| "no_route"; "ttl"; "policy"; "queue"; "link_down"; "node_down"; "shed" |]

let drop_index = function
  | `No_route -> 0
  | `Ttl -> 1
  | `Policy -> 2
  | `Queue -> 3
  | `Link_down -> 4
  | `Node_down -> 5
  | `Shed -> 6

(* The ad-hoc counters record is kept as the stable API; the same
   increments are mirrored into the obs registry as labeled families
   (net.network.delivered, net.network.dropped{reason}). The record
   fields are engine-thread bookkeeping; under a sharded engine only
   the pre-resolved (atomic) obs counters are exact. *)
let drop t reason =
  (match reason with
   | `No_route -> t.ctrs.dropped_no_route <- t.ctrs.dropped_no_route + 1
   | `Ttl -> t.ctrs.dropped_ttl <- t.ctrs.dropped_ttl + 1
   | `Policy -> t.ctrs.dropped_policy <- t.ctrs.dropped_policy + 1
   | `Queue -> t.ctrs.dropped_queue <- t.ctrs.dropped_queue + 1
   | `Link_down -> t.ctrs.dropped_link_down <- t.ctrs.dropped_link_down + 1
   | `Node_down -> t.ctrs.dropped_node_down <- t.ctrs.dropped_node_down + 1
   | `Shed -> t.ctrs.dropped_shed <- t.ctrs.dropped_shed + 1);
  Obs.Counter.inc t.c_drops.(drop_index reason)
let set_handler t nid h = Hashtbl.replace t.handlers nid h

let add_middleware t did m =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.middlewares did) in
  Hashtbl.replace t.middlewares did (cur @ [ m ])

let clear_middlewares t did = Hashtbl.remove t.middlewares did

let set_middlewares t did = function
  | [] -> Hashtbl.remove t.middlewares did
  | ms -> Hashtbl.replace t.middlewares did ms

let policed t did =
  match Hashtbl.find_opt t.middlewares did with
  | None | Some [] -> false
  | Some _ -> true

let add_tap t did f =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.taps did) in
  Hashtbl.replace t.taps did (cur @ [ f ])

let link_between t a b = Hashtbl.find_opt t.links (a, b)

let iter_links t f = Hashtbl.iter (fun (a, b) link -> f a b link) t.links

(* Node liveness (fault injection): a down node neither originates,
   transits nor receives packets — its in-flight traffic is dropped
   with reason [node_down]. *)
let set_node_up t nid ~up =
  if up then Hashtbl.remove t.down_nodes nid
  else Hashtbl.replace t.down_nodes nid ()

let node_up t nid = not (Hashtbl.mem t.down_nodes nid)

let drop_of_send_result t = function
  | Link.Sent -> ()
  | Link.Dropped Link.Queue_full -> drop t `Queue
  | Link.Dropped Link.Link_down -> drop t `Link_down
  | Link.Dropped Link.Shed -> drop t `Shed

let fire_taps t did p =
  match Hashtbl.find_opt t.taps did with
  | None -> ()
  | Some fs ->
    let obs = Observation.of_packet ~now:(Engine.now t.engine) p in
    List.iter (fun f -> f obs) fs

let is_local t (node : Topology.node) (p : Packet.t) =
  Ipaddr.equal p.dst node.addr
  || List.mem node.nid (Topology.anycast_members t.topo p.dst)

let deliver t nid p =
  t.ctrs.delivered <- t.ctrs.delivered + 1;
  Obs.Counter.inc t.c_delivered;
  match Hashtbl.find_opt t.handlers nid with
  | Some h -> h t nid p
  | None -> ()

(* Run the domain middleware chain; the continuation receives the possibly
   re-marked packet. Delay re-enters after the pause without re-running
   the chain (the verdict for this hop has been rendered). *)
let apply_middlewares t did p k =
  match Hashtbl.find_opt t.middlewares did with
  | None | Some [] -> k (Some p)
  | Some chain ->
    let obs = Observation.of_packet ~now:(Engine.now t.engine) p in
    let rec go chain p =
      match chain with
      | [] -> k (Some p)
      | m :: rest ->
        (match m obs with
         | Forward -> go rest p
         | Drop ->
           drop t `Policy;
           k None
         | Delay d ->
           ignore
             (Engine.schedule t.engine ~delay:d (fun () -> k (Some p)))
         | Remark dscp -> go rest { p with Packet.dscp })
    in
    go chain p

let rec receive t nid (p : Packet.t) =
  if not (node_up t nid) then drop t `Node_down
  else receive_up t nid p

and receive_up t nid (p : Packet.t) =
  let node = Topology.node t.topo nid in
  fire_taps t node.domain p;
  if is_local t node p then
    (* Ingress policing: the domain's middleware also covers packets
       delivered to local nodes (hosts, neutralizer boxes). *)
    apply_middlewares t node.domain p (function
      | None -> ()
      | Some p -> deliver t nid p)
  else transit t nid p

and transit t nid (p : Packet.t) =
  let node = Topology.node t.topo nid in
  match Packet.decrement_ttl p with
  | None -> drop t `Ttl
  | Some p ->
    apply_middlewares t node.domain p (fun verdict ->
        match verdict with
        | None -> ()
        | Some p -> forward t nid p)

and forward t nid (p : Packet.t) =
  match Routing.next_hop t.routing t.topo ~from:nid p.dst with
  | None -> drop t `No_route
  | Some next when next = nid -> deliver t nid p
  | Some next ->
    (match Hashtbl.find_opt t.links (nid, next) with
     | None -> drop t `No_route
     | Some link -> drop_of_send_result t (Link.send link p))

let send t ~from p =
  if not (node_up t from) then drop t `Node_down
  else begin
    let node = Topology.node t.topo from in
    fire_taps t node.domain p;
    if is_local t node p then deliver t from p
    else begin
      match Routing.next_hop t.routing t.topo ~from p.Packet.dst with
      | None -> drop t `No_route
      | Some next when next = from -> deliver t from p
      | Some next ->
        (match Hashtbl.find_opt t.links (from, next) with
         | None -> drop t `No_route
         | Some link -> drop_of_send_result t (Link.send link p))
    end
  end

let service ?(kind = "other") t nid ~cost k =
  (* Per-hop processing-cost charge, broken out by operation kind
     (crypto op at the neutralizer, vanilla forward, ...). *)
  Obs.Histogram.add
    (Obs.Registry.histogram (Engine.obs t.engine)
       ~labels:[ ("kind", kind) ]
       "net.network.service_ns")
    (Int64.to_int cost);
  let now = Engine.now t.engine in
  let busy = Option.value ~default:0L (Hashtbl.find_opt t.busy nid) in
  let start = if Int64.compare busy now > 0 then busy else now in
  let finish = Int64.add start cost in
  Hashtbl.replace t.busy nid finish;
  ignore (Engine.schedule t.engine ~delay:(Int64.sub finish now) (fun () -> k ()))

let backlog t nid =
  let now = Engine.now t.engine in
  let busy = Option.value ~default:0L (Hashtbl.find_opt t.busy nid) in
  if Int64.compare busy now > 0 then Int64.sub busy now else 0L

(* Instantiate link objects for any topology edges added since creation,
   then rebuild the shortest-path tables. *)
let recompute_routes t =
  List.iter
    (fun (e : Topology.edge) ->
      let ensure a b =
        if not (Hashtbl.mem t.links (a, b)) then begin
          let label =
            (Topology.node t.topo a).node_name ^ "->"
            ^ (Topology.node t.topo b).node_name
          in
          let link =
            Link.create t.engine ~bandwidth_bps:e.bandwidth_bps
              ~latency:e.latency ~queue_bytes:e.queue_bytes ~label
              ~deliver:(fun p -> receive t b p)
              ()
          in
          Hashtbl.replace t.links (a, b) link
        end
      in
      ensure e.a e.b;
      ensure e.b e.a)
    (Topology.edges t.topo);
  t.routing <-
    Routing.compute ~policy:t.route_policy
      ~usable:(fun nid -> not (Hashtbl.mem t.down_nodes nid))
      t.topo

let create ?(policy = Routing.Shortest) engine topo =
  let t =
    { engine;
      topo;
      route_policy = policy;
      routing = Routing.compute ~policy topo;
      links = Hashtbl.create 64;
      handlers = Hashtbl.create 64;
      middlewares = Hashtbl.create 8;
      taps = Hashtbl.create 8;
      busy = Hashtbl.create 16;
      down_nodes = Hashtbl.create 4;
      c_delivered =
        Obs.Registry.counter (Engine.obs engine) "net.network.delivered";
      c_drops =
        Array.map
          (fun reason ->
            Obs.Registry.counter (Engine.obs engine)
              ~labels:[ ("reason", reason) ]
              "net.network.dropped")
          drop_reasons;
      ctrs =
        { delivered = 0;
          dropped_no_route = 0;
          dropped_ttl = 0;
          dropped_policy = 0;
          dropped_queue = 0;
          dropped_link_down = 0;
          dropped_node_down = 0;
          dropped_shed = 0
        }
    }
  in
  recompute_routes t;
  t

(* Wire-level injection: the packet arrives at [nid] as if off a link —
   transit middleware, TTL, policy and all. The fluid tier's spill
   boundary uses this to drop representative packets into a boundary
   domain exactly where the aggregate's traffic would enter it. *)
let inject t nid p = receive t nid p

let route_path t ~from dst =
  let n = Topology.node_count t.topo in
  let rec walk acc hops nid =
    if hops > n then None (* routing loop; cannot happen on converged tables *)
    else
      match Routing.next_hop t.routing t.topo ~from:nid dst with
      | None -> None
      | Some next when next = nid -> Some (List.rev (nid :: acc))
      | Some next -> walk (nid :: acc) (hops + 1) next
  in
  walk [] 0 from

let run ?pool ?until ?max_events t =
  Engine.run ?pool ?until ?max_events t.engine
