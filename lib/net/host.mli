(** End-host plumbing on top of {!Network}: UDP-style port dispatch,
    ephemeral ports, request/response with timeout, and a separate hook
    for shim-protocol packets (IP protocol 253), which have no ports. *)

type t

val attach : Network.t -> Topology.node -> t
(** [attach net node] registers this module as [node]'s packet handler.
    At most one [Host.t] per node. *)

val node : t -> Topology.node
val network : t -> Network.t
val addr : t -> Ipaddr.t

val listen : t -> port:int -> (t -> Packet.t -> unit) -> unit
(** Install a UDP service on [port]. *)

val unlisten : t -> port:int -> unit

val on_shim : t -> (t -> Packet.t -> unit) -> unit
(** Handler for shim-layer packets delivered to this host. *)

val on_deliver : t -> (Packet.t -> unit) -> unit
(** Measurement hook: called for every packet delivered to this host,
    before port/shim dispatch. Used by experiments to feed {!Flow}
    collectors at the true delivery point. *)

val send : t -> Packet.t -> unit
(** Inject a packet into the network from this host. *)

val send_udp :
  t ->
  dst:Ipaddr.t ->
  dst_port:int ->
  ?src_port:int ->
  ?dscp:int ->
  ?flow_id:int ->
  ?seq:int ->
  ?app:string ->
  string ->
  unit
(** Convenience UDP send with [meta.sent_at] stamped from the engine
    clock. *)

val request :
  t ->
  dst:Ipaddr.t ->
  dst_port:int ->
  timeout:int64 ->
  ?retries:int ->
  ?app:string ->
  string ->
  on_reply:(Packet.t -> unit) ->
  on_timeout:(unit -> unit) ->
  unit
(** One-shot request: allocates an ephemeral source port, sends, and
    waits for the first reply to that port. Retransmits up to [retries]
    times (default 2) before giving up. *)

val default_drop : t -> int
(** Packets that reached this host with no matching port/shim handler. *)
