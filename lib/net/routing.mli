(** Routing over the topology graph.

    Two modes:

    - [Shortest] (default): plain Dijkstra on link latency — adequate for
      the paper's Figure-1 world, where every inter-domain edge is a
      peering link.
    - [Valley_free]: Gao-Rexford policy routing. Inter-domain links carry
      business relationships ({!Topology.relationship}: on an edge
      [(a, b, Customer)], [b]'s domain is a customer of [a]'s domain);
      a legal path climbs zero or more customer->provider hops, crosses
      at most one peering link, then descends provider->customer — no
      domain transits traffic between two of its providers or peers for
      free. Inter-domain edges without a declared relationship are
      treated as peering.

    Anycast destinations resolve to the group member with the smallest
    policy-legal distance from the forwarding node — exactly the "any
    neutralizer can decrypt and forward" property (§3.2) the paper gets
    from the shared master key.

    [Valley_free] models BGP's outcome, not its mechanism: each node
    forwards along its own best policy-legal path. In topologies where
    hop-by-hop composition of per-node choices could differ from the
    source's end-to-end path (possible without BGP's export filtering),
    prefer reading {!distance}/{!reachable} as the control-plane truth. *)

type policy = Shortest | Valley_free

type t

val compute : ?policy:policy -> ?usable:(Topology.node_id -> bool) -> Topology.t -> t
(** Rebuild after topology changes (e.g. multi-homing failover tests).
    Nodes for which [usable] is false (default: all usable) are excluded
    from the graph entirely — they neither forward, originate, nor sink,
    so paths converge around them as routing protocols converge around a
    dead router. {!Network.recompute_routes} passes its down-node set. *)

val policy : t -> policy

val next_hop :
  t -> Topology.t -> from:Topology.node_id -> Ipaddr.t ->
  Topology.node_id option
(** [next_hop r topo ~from dst] is the neighbour to forward to, [None] if
    [dst] is unknown or unreachable under the mode's policy. Returns
    [from] itself when the packet has arrived (dst is [from]'s address or
    an anycast address [from] serves). *)

val distance :
  t -> from:Topology.node_id -> to_:Topology.node_id -> int64 option
(** Path latency in nanoseconds (over policy-legal paths only). *)

val reachable : t -> from:Topology.node_id -> to_:Topology.node_id -> bool

val nearest :
  t -> from:Topology.node_id -> Topology.node_id list ->
  Topology.node_id option
(** Member of the list with minimum distance from [from]. *)
