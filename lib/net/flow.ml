type record = {
  mutable app : string;
  mutable sent : int;
  mutable received : int;
  mutable sent_bytes : int;
  mutable received_bytes : int;
  mutable latency_sum : float;
  mutable latency_max : float;
  mutable last_latency : float option;
  mutable jitter_sum : float;
  mutable jitter_count : int;
  mutable first_recv : int64 option;
  mutable last_recv : int64;
}

type t = (int, record) Hashtbl.t

type report = {
  flow_id : int;
  app : string;
  sent : int;
  received : int;
  sent_bytes : int;
  received_bytes : int;
  loss : float;
  mean_latency_ms : float;
  max_latency_ms : float;
  jitter_ms : float;
  throughput_bps : float;
}

let create () : t = Hashtbl.create 16

let record t flow_id =
  match Hashtbl.find_opt t flow_id with
  | Some r -> r
  | None ->
    let r =
      { app = "";
        sent = 0;
        received = 0;
        sent_bytes = 0;
        received_bytes = 0;
        latency_sum = 0.0;
        latency_max = 0.0;
        last_latency = None;
        jitter_sum = 0.0;
        jitter_count = 0;
        first_recv = None;
        last_recv = 0L
      }
    in
    Hashtbl.replace t flow_id r;
    r

let on_send t (p : Packet.t) =
  let r = record t p.meta.flow_id in
  if r.app = "" then r.app <- p.meta.app;
  r.sent <- r.sent + 1;
  r.sent_bytes <- r.sent_bytes + Packet.size p

let on_receive t ~now (p : Packet.t) =
  let r = record t p.meta.flow_id in
  r.received <- r.received + 1;
  r.received_bytes <- r.received_bytes + Packet.size p;
  let latency = Int64.to_float (Int64.sub now p.meta.sent_at) *. 1e-6 in
  r.latency_sum <- r.latency_sum +. latency;
  if latency > r.latency_max then r.latency_max <- latency;
  (match r.last_latency with
   | Some prev ->
     r.jitter_sum <- r.jitter_sum +. Float.abs (latency -. prev);
     r.jitter_count <- r.jitter_count + 1
   | None -> ());
  r.last_latency <- Some latency;
  if r.first_recv = None then r.first_recv <- Some now;
  r.last_recv <- now

let to_report flow_id (r : record) =
  let loss =
    if r.sent = 0 then 0.0
    else Float.max 0.0 (float_of_int (r.sent - r.received) /. float_of_int r.sent)
  in
  let span_s =
    match r.first_recv with
    | None -> 0.0
    | Some f -> Int64.to_float (Int64.sub r.last_recv f) *. 1e-9
  in
  { flow_id;
    app = r.app;
    sent = r.sent;
    received = r.received;
    sent_bytes = r.sent_bytes;
    received_bytes = r.received_bytes;
    loss;
    mean_latency_ms =
      (if r.received = 0 then 0.0 else r.latency_sum /. float_of_int r.received);
    max_latency_ms = r.latency_max;
    jitter_ms =
      (if r.jitter_count = 0 then 0.0
       else r.jitter_sum /. float_of_int r.jitter_count);
    throughput_bps =
      (if span_s <= 0.0 then 0.0
       else float_of_int (8 * r.received_bytes) /. span_s)
  }

(* Reports for traffic that never existed as packets: the fluid-aggregate
   tier measures whole cohorts analytically and renders them in the same
   shape the packet instrument produces, so experiment tables mix tiers
   freely. *)
let synthetic ~flow_id ~app ~sent ~received ~sent_bytes ~received_bytes
    ~mean_latency_ms ~max_latency_ms ~jitter_ms ~duration_s =
  { flow_id;
    app;
    sent;
    received;
    sent_bytes;
    received_bytes;
    loss =
      (if sent = 0 then 0.0
       else Float.max 0.0 (float_of_int (sent - received) /. float_of_int sent));
    mean_latency_ms;
    max_latency_ms;
    jitter_ms;
    throughput_bps =
      (if duration_s <= 0.0 then 0.0
       else float_of_int (8 * received_bytes) /. duration_s)
  }

let report t ~flow_id =
  Option.map (to_report flow_id) (Hashtbl.find_opt t flow_id)

let reports t =
  Hashtbl.fold (fun id r acc -> to_report id r :: acc) t []
  |> List.sort (fun a b -> Int.compare a.flow_id b.flow_id)

(* Simplified E-model: R = 93.2 - latency impairment - loss impairment,
   then the standard R -> MOS mapping, clamped to [1, 4.5]. *)
let mos r =
  let d = r.mean_latency_ms +. (2.0 *. r.jitter_ms) in
  let id = (0.024 *. d) +. if d > 177.3 then 0.11 *. (d -. 177.3) else 0.0 in
  let ie = 30.0 *. log (1.0 +. (15.0 *. r.loss)) in
  let rf = 93.2 -. id -. ie in
  let mos =
    if rf < 0.0 then 1.0
    else if rf > 100.0 then 4.5
    else 1.0 +. (0.035 *. rf) +. (rf *. (rf -. 60.0) *. (100.0 -. rf) *. 7e-6)
  in
  Float.max 1.0 (Float.min 4.5 mos)
