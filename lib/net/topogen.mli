(** Seeded generation of Internet-like AS topologies.

    The hand-built graphs in {!Topology} (the paper's Figure-1 world,
    the PDES ring) stop at a dozen domains; the scale experiments need
    hundreds. [generate] grows a power-law domain graph by preferential
    attachment — every new AS buys transit from [attach] existing
    providers drawn proportionally to their degree, the REPETITA-style
    family of repeatable AS-level graphs — then overlays a
    settlement-free peering mesh and places neutralizer boxes (one
    shared anycast service address) in the best-connected transit
    domains.

    Determinism contract: the topology is a pure function of [seed] and
    the shape parameters. Same inputs, same {!fingerprint} — the
    property the qcheck suite in [test/test_scale.ml] pins. *)

type t = {
  topo : Topology.t;
  routers : Topology.node_id array;  (** gateway router of domain [d] *)
  boxes : (Topology.domain_id * Topology.node_id) list;
      (** neutralizer-box placements, best-connected domain first *)
  anycast : Ipaddr.t;  (** the shared neutralizer service address *)
  degrees : int array;  (** inter-domain degree of domain [d] *)
  seed : int;
}

val generate :
  ?attach:int ->
  ?peer_fraction:float ->
  ?box_domains:int ->
  domains:int ->
  seed:int ->
  unit ->
  t
(** [generate ~domains ~seed ()] builds a [domains]-AS topology: a
    fully-meshed core of [attach + 1] (default [attach = 2]) seed
    domains, preferential-attachment customer/provider edges for the
    rest, [peer_fraction * domains] (default 0.15) extra peering links,
    and neutralizer boxes in the [box_domains] (default 4)
    highest-degree domains. Every domain owns one gateway router; box
    domains additionally own the box node. Raises [Invalid_argument] on
    degenerate shapes ([domains < 2], [attach < 1], [box_domains]
    outside [1, domains]). *)

val client :
  t ->
  domain:Topology.domain_id ->
  name:string ->
  ?bandwidth_bps:int ->
  ?latency:int64 ->
  unit ->
  Topology.node
(** Attach one packet-level client host behind a domain's gateway router
    (default: 100 Mbit/s access link, 1 ms) — how the equivalence
    reference populates a generated topology with real senders. *)

val fingerprint : t -> int
(** Canonical 62-bit digest over domains, nodes and edges in stable
    listing order — the seed-determinism witness. *)

val connected : t -> bool
(** BFS reachability of every node from node 0. Always true for
    generated graphs; exposed for the property suite. *)
