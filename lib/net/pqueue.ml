(* The heap is three parallel arrays instead of an array of records:
   priorities live in unboxed [int] arrays (no per-event record or boxed
   int64 retained per entry), values in a plain ['a array]. Timestamps are
   stored as native 63-bit ints — simulated nanoseconds up to ~146 years,
   range-checked on push. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
      (* [[||]] until the first push provides a fill value; afterwards
         always the same length as [times] *)
  mutable len : int;
}

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Pqueue.create: negative capacity";
  { times = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = [||];
    len = 0
  }

let is_empty q = q.len = 0
let length q = q.len

(* The PDES round scheduler polls every shard's minimum each round;
   returning the native-int timestamp directly keeps that poll
   allocation-free (no [Some (int64, _, _)] tuple per peek). *)
let min_time q = if q.len = 0 then max_int else q.times.(0)

let clear q =
  (* Keep the arrays (capacity is the point of reuse) but drop value
     references so cleared events can be collected; an empty [vals] is
     re-made by the next push. *)
  q.vals <- [||];
  q.len <- 0

(* Ensure room for one more entry, using [value] to fill fresh value
   slots. *)
let ensure q value =
  let cap = Array.length q.times in
  if q.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    Array.blit q.times 0 nt 0 q.len;
    Array.blit q.seqs 0 ns 0 q.len;
    q.times <- nt;
    q.seqs <- ns;
    let nv = Array.make ncap value in
    Array.blit q.vals 0 nv 0 q.len;
    q.vals <- nv
  end
  else if Array.length q.vals < cap then begin
    (* First push after [create ~capacity] or [clear]. *)
    let nv = Array.make cap value in
    Array.blit q.vals 0 nv 0 q.len;
    q.vals <- nv
  end

let less q i j =
  let ti = q.times.(i) and tj = q.times.(j) in
  ti < tj || (ti = tj && q.seqs.(i) < q.seqs.(j))

let swap q i j =
  let t = q.times.(i) in
  q.times.(i) <- q.times.(j);
  q.times.(j) <- t;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let v = q.vals.(i) in
  q.vals.(i) <- q.vals.(j);
  q.vals.(j) <- v

let push q time seq value =
  let ti = Int64.to_int time in
  if Int64.of_int ti <> time then invalid_arg "Pqueue.push: time out of range";
  ensure q value;
  q.times.(q.len) <- ti;
  q.seqs.(q.len) <- seq;
  q.vals.(q.len) <- value;
  q.len <- q.len + 1;
  (* Sift up. *)
  let i = ref (q.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less q !i parent then begin
      swap q !i parent;
      i := parent
    end
    else continue := false
  done

let peek_min q =
  if q.len = 0 then None
  else Some (Int64.of_int q.times.(0), q.seqs.(0), q.vals.(0))

let pop_min q =
  if q.len = 0 then None
  else begin
    let time = q.times.(0) and seq = q.seqs.(0) and value = q.vals.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.times.(0) <- q.times.(q.len);
      q.seqs.(0) <- q.seqs.(q.len);
      q.vals.(0) <- q.vals.(q.len);
      (* The freed tail slot keeps a duplicate of the root reference, so
         the array never pins a value that already left the heap. *)
      q.vals.(q.len) <- q.vals.(0);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && less q l !smallest then smallest := l;
        if r < q.len && less q r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap q !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (Int64.of_int time, seq, value)
  end
