type 'a entry = { time : int64; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let is_empty q = q.len = 0
let length q = q.len

let less a b =
  match Int64.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow q entry =
  let cap = Array.length q.arr in
  if q.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let narr = Array.make ncap entry in
    Array.blit q.arr 0 narr 0 q.len;
    q.arr <- narr
  end

let push q time seq value =
  let entry = { time; seq; value } in
  grow q entry;
  q.arr.(q.len) <- entry;
  q.len <- q.len + 1;
  (* Sift up. *)
  let i = ref (q.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less q.arr.(!i) q.arr.(parent) then begin
      let tmp = q.arr.(!i) in
      q.arr.(!i) <- q.arr.(parent);
      q.arr.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek_min q =
  if q.len = 0 then None
  else begin
    let e = q.arr.(0) in
    Some (e.time, e.seq, e.value)
  end

let pop_min q =
  if q.len = 0 then None
  else begin
    let top = q.arr.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.arr.(0) <- q.arr.(q.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && less q.arr.(l) q.arr.(!smallest) then smallest := l;
        if r < q.len && less q.arr.(r) q.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = q.arr.(!i) in
          q.arr.(!i) <- q.arr.(!smallest);
          q.arr.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.seq, top.value)
  end
