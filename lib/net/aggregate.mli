(** Fluid-aggregate hybrid simulation tier.

    The packet tier costs one event per packet per hop; at a million
    clients that is unpayable. This tier simulates a {e cohort} —
    thousands of same-behaved clients in one domain sending to one
    destination — as a single object holding integer rate/byte-count
    state, advanced by one rate-update event per grid step [dt] along
    its routed path. Link contention is fluid: each directed edge
    accumulates this step's offered bytes, and a cohort crossing it is
    attenuated by [capacity / previous-step load] when the edge was
    overloaded (one-step lag).

    {e Spill-to-packet}: domains with a non-empty policy table
    ({!Network.policed}), and the neutralizer box's domain when it
    terminates the path, are boundaries where fluid abstraction would
    hide exactly the behavior this repo studies. There the cohort's
    bytes stop and a few representative packets carrying the cohort's
    real protocol/DSCP/port fields are injected at the entry router —
    middleware chains, TTL and the box access link apply unmodified —
    and the measured pass ratio rescales the cohort. Transit boundaries
    re-aggregate to fluid on egress at the next grid step.

    {e Determinism}: with a sharded {!Engine} (with or without a
    {!Par.pool}) the final {!digest} is bit-identical at every shard
    count. All cross-cohort state is either atomic-integer adds (load
    buffers, statistics — order-insensitive) or packet-tier state
    serialized by unique per-cohort event timestamps. [dt] is clamped up
    to the engine's lookahead so consecutive grid steps always fall in
    different conservative rounds. Boundary middleware and handlers must
    be safe to run on the boundary domain's shard.

    Usage: build the topology, create the (optionally sharded) engine
    and network, install policies, then [create] the aggregate,
    [add_cohort] for each client population, [launch], and
    {!Engine.run}. Experiment E14 drives this at AS scale on
    {!Topogen} graphs. *)

type t

type stats = {
  cohorts : int;
  clients : int;  (** simulated clients across all cohorts *)
  steps : int;
  duration_s : float;  (** simulated span of the emission grid *)
  offered_bytes : int;
  delivered_bytes : int;
  spilled_bytes : int;  (** bytes that crossed a spill boundary *)
  spill_pkts_sent : int;  (** representative packets injected *)
  spill_pkts_back : int;  (** representatives that survived the boundary *)
  box_goodput_bytes : int;  (** bytes delivered at neutralizer boxes *)
}

val create :
  ?spill_pkts:int -> ?pkt_bytes:int -> dt:int64 -> steps:int -> Network.t -> t
(** [create ~dt ~steps net] prepares the fluid tier over [net]'s
    topology as it exists now (links added later are rejected at
    {!add_cohort}). [dt] (ns) is the rate-update step, silently clamped
    up to the engine's conservative lookahead; [steps] is how many grid
    steps cohorts emit for. [spill_pkts] (default 8) representative
    packets of [pkt_bytes] (default 1200, wire size) measure each
    boundary crossing — granularity of the measured pass ratio is
    [1/spill_pkts]. Raises [Invalid_argument] on degenerate parameters,
    or on a sharded engine whose topology has no cross-shard link. *)

val add_cohort :
  ?app:string ->
  ?protocol:Packet.protocol ->
  ?dscp:int ->
  ?dst_port:int ->
  t ->
  src:Topology.node_id ->
  dst:Ipaddr.t ->
  clients:int ->
  rate_bps:int ->
  unit ->
  int
(** [add_cohort t ~src ~dst ~clients ~rate_bps ()] registers [clients]
    clients behind node [src] (normally the domain's gateway router)
    each sending [rate_bps] toward [dst] (unicast or anycast), and
    returns the cohort id. The header fields are what boundary policies
    get to see. The path and its spill points are resolved against the
    routing tables and policy placement {e now}. Raises
    [Invalid_argument] when unroutable, already launched, or the
    per-step emission rounds to zero bytes. *)

val launch : t -> unit
(** Schedule every cohort's rate-update events and the load-buffer
    ticker. Call once, after all cohorts are added and before
    {!Engine.run} first advances the engine. *)

val clients : t -> int
(** Total simulated clients registered so far. *)

val dt : t -> int64
(** The effective step (after lookahead clamping). *)

val stats : t -> stats
(** Aggregate totals; meaningful once {!Engine.run} has returned. *)

val report : t -> cohort:int -> Flow.report option

val reports : t -> Flow.report list
(** Per-cohort results in {!Flow.report} form (packet counts are
    [pkt_bytes]-equivalents; jitter is not modeled and reads 0),
    directly comparable with packet-tier flows — the equivalence gate of
    experiment E14 relies on this. *)

val digest : t -> int
(** 62-bit fold of every cohort's final counters in cohort order. Equal
    seeds, cohorts and parameters must produce equal digests at every
    shard count, pool or no pool — checked by [test/test_scale.ml] and
    the [netneutral scale] gate. *)
