type policy = Shortest | Valley_free

type t = {
  mode : policy;
  dist : int64 array array; (* dist.(src).(dst), -1L = unreachable *)
  first_hop : int array array; (* first_hop.(src).(dst), -1 = none *)
}

let infinity64 = Int64.max_int
let policy t = t.mode

(* How a hop from [u] to [v] over edge [e] reads in Gao-Rexford terms. *)
type hop_kind = Intra | Up (* customer -> provider *) | Down | Peer_hop

let hop_kind topo (e : Topology.edge) u =
  let du = (Topology.node topo e.a).domain
  and dv = (Topology.node topo e.b).domain in
  if du = dv then Intra
  else begin
    match e.rel with
    | Some Topology.Customer ->
      (* b's domain is a customer of a's domain *)
      if u = e.a then Down else Up
    | Some Topology.Peer | None -> Peer_hop
  end

(* Valley-free phases: Up = still climbing (customer->provider hops
   only so far), Peered = crossed the one allowed peering link,
   Down = descending. Legal transitions:
     Up   --up-->   Up       Up   --peer--> Peered
     any  --down--> Down     any  --intra-> same
   Everything else is a valley. *)
let phase_up = 0

let phase_peered = 1
let phase_down = 2

let transition phase kind =
  match kind with
  | Intra -> Some phase
  | Up -> if phase = phase_up then Some phase_up else None
  | Peer_hop -> if phase = phase_up then Some phase_peered else None
  | Down -> Some phase_down

let compute ?(policy = Shortest) ?(usable = fun _ -> true) topo =
  let n = Topology.node_count topo in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Topology.edge) ->
      (* A down node neither forwards nor sinks: leaving its edges out
         makes Dijkstra converge around it, the way routing protocols
         converge around a dead router. *)
      if usable e.a && usable e.b then begin
        adj.(e.a) <- (e.b, e.latency, e) :: adj.(e.a);
        adj.(e.b) <- (e.a, e.latency, e) :: adj.(e.b)
      end)
    (Topology.edges topo);
  let dist = Array.make_matrix n n (-1L) in
  let first_hop = Array.make_matrix n n (-1) in
  let phases = match policy with Shortest -> 1 | Valley_free -> 3 in
  (* state id = node * phases + phase *)
  let states = n * phases in
  for src = 0 to n - 1 do
    let d = Array.make states infinity64 in
    let hop = Array.make states (-1) in
    let visited = Array.make states false in
    let q = Pqueue.create () in
    let start = src * phases in
    d.(start) <- 0L;
    Pqueue.push q 0L 0 start;
    let seq = ref 1 in
    let rec drain () =
      match Pqueue.pop_min q with
      | None -> ()
      | Some (du, _, su) ->
        if (not visited.(su)) && Int64.equal du d.(su) then begin
          visited.(su) <- true;
          let u = su / phases and phase = su mod phases in
          List.iter
            (fun (v, w, e) ->
              let next_phase =
                match policy with
                | Shortest -> Some 0
                | Valley_free -> transition phase (hop_kind topo e u)
              in
              match next_phase with
              | None -> ()
              | Some p ->
                let sv = (v * phases) + p in
                let nd = Int64.add du w in
                if Int64.compare nd d.(sv) < 0 then begin
                  d.(sv) <- nd;
                  hop.(sv) <- (if u = src then v else hop.(su));
                  Pqueue.push q nd !seq sv;
                  incr seq
                end)
            adj.(u)
        end;
        drain ()
    in
    drain ();
    for dst = 0 to n - 1 do
      (* best over phases *)
      let best = ref infinity64 and best_hop = ref (-1) in
      for p = 0 to phases - 1 do
        let s = (dst * phases) + p in
        if Int64.compare d.(s) !best < 0 then begin
          best := d.(s);
          best_hop := hop.(s)
        end
      done;
      if Int64.compare !best infinity64 < 0 then begin
        dist.(src).(dst) <- !best;
        first_hop.(src).(dst) <- !best_hop
      end
    done;
    first_hop.(src).(src) <- src
  done;
  { mode = policy; dist; first_hop }

let distance t ~from ~to_ =
  let d = t.dist.(from).(to_) in
  if Int64.compare d 0L < 0 then None else Some d

let reachable t ~from ~to_ = distance t ~from ~to_ <> None

let nearest t ~from members =
  let best =
    List.fold_left
      (fun acc m ->
        match distance t ~from ~to_:m with
        | None -> acc
        | Some d ->
          (match acc with
           | Some (_, bd) when Int64.compare bd d <= 0 -> acc
           | _ -> Some (m, d)))
      None members
  in
  Option.map fst best

let next_hop t topo ~from dst =
  let target =
    match Topology.anycast_members topo dst with
    | [] ->
      Option.map (fun (n : Topology.node) -> n.nid)
        (Topology.node_of_addr topo dst)
    | members ->
      if List.mem from members then Some from else nearest t ~from members
  in
  match target with
  | None -> None
  | Some target ->
    if target = from then Some from
    else begin
      let hop = t.first_hop.(from).(target) in
      if hop < 0 then None else Some hop
    end
