type t = {
  net : Network.t;
  node : Topology.node;
  ports : (int, t -> Packet.t -> unit) Hashtbl.t;
  mutable shim_handler : (t -> Packet.t -> unit) option;
  mutable deliver_hook : (Packet.t -> unit) option;
  mutable next_ephemeral : int;
  mutable dropped : int;
}

let node t = t.node
let network t = t.net
let addr t = t.node.Topology.addr

let handle t (p : Packet.t) =
  (match t.deliver_hook with Some f -> f p | None -> ());
  match p.protocol with
  | Packet.Shim ->
    (match t.shim_handler with
     | Some h -> h t p
     | None -> t.dropped <- t.dropped + 1)
  | Packet.Udp | Packet.Tcp | Packet.Icmp ->
    (match Hashtbl.find_opt t.ports p.dst_port with
     | Some h -> h t p
     | None -> t.dropped <- t.dropped + 1)

let attach net node =
  let t =
    { net;
      node;
      ports = Hashtbl.create 8;
      shim_handler = None;
      deliver_hook = None;
      next_ephemeral = 49152;
      dropped = 0
    }
  in
  Network.set_handler net node.Topology.nid (fun _net _nid p -> handle t p);
  t

let listen t ~port h = Hashtbl.replace t.ports port h
let unlisten t ~port = Hashtbl.remove t.ports port
let on_shim t h = t.shim_handler <- Some h
let on_deliver t f = t.deliver_hook <- Some f
let send t p = Network.send t.net ~from:t.node.Topology.nid p

let ephemeral_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- (if p >= 65535 then 49152 else p + 1);
  p

let send_udp t ~dst ~dst_port ?(src_port = 0) ?(dscp = 0) ?(flow_id = 0)
    ?(seq = 0) ?(app = "") payload =
  let engine = Network.engine t.net in
  let p =
    Packet.make ~src:(addr t) ~dst ~dst_port ~src_port ~dscp ~flow_id ~seq
      ~sent_at:(Engine.now engine) ~app payload
  in
  send t p

let request t ~dst ~dst_port ~timeout ?(retries = 2) ?(app = "") payload
    ~on_reply ~on_timeout =
  let engine = Network.engine t.net in
  let port = ephemeral_port t in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      unlisten t ~port
    end
  in
  listen t ~port (fun _t p ->
      if not !finished then begin
        finish ();
        on_reply p
      end);
  let rec attempt left =
    if not !finished then begin
      send_udp t ~dst ~dst_port ~src_port:port ~app payload;
      ignore
        (Engine.schedule engine ~delay:timeout (fun () ->
             if not !finished then begin
               if left > 0 then attempt (left - 1)
               else begin
                 finish ();
                 on_timeout ()
               end
             end))
    end
  in
  attempt retries

let default_drop t = t.dropped
