(** Bounded capture buffer of wire observations — the simulated
    equivalent of running tcpdump inside an ISP. Tests use it to assert
    what an adversary could and could not have seen. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 65536 observations; older entries are evicted
    FIFO. *)

val tap : t -> Observation.t -> unit
(** Feed an observation (pass [tap t] to {!Network.add_tap}). *)

val length : t -> int
val to_list : t -> Observation.t list
(** Oldest first. *)

val filter : t -> (Observation.t -> bool) -> Observation.t list
val exists : t -> (Observation.t -> bool) -> bool
val count : t -> (Observation.t -> bool) -> int
val clear : t -> unit
