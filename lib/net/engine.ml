type event = { f : unit -> unit; mutable cancelled : bool }

type t = {
  q : event Pqueue.t;
  mutable clock : int64;
  mutable seq : int;
  mutable processed : int;
  mutable scheduled : int;
  mutable popped : int;
  obs : Obs.Registry.t;
  c_processed : Obs.Counter.t;
  c_scheduled : Obs.Counter.t;
  c_cancelled : Obs.Counter.t;
  g_pending : Obs.Gauge.t;
  g_ratio : Obs.Gauge.t;
}

type handle = event

let create ?(obs = Obs.Registry.default) ?(capacity = 0) () =
  let t =
    { q = Pqueue.create ~capacity ();
      clock = 0L;
      seq = 0;
      processed = 0;
      scheduled = 0;
      popped = 0;
      obs;
      c_processed = Obs.Registry.counter obs "net.engine.events_processed";
      c_scheduled = Obs.Registry.counter obs "net.engine.events_scheduled";
      c_cancelled = Obs.Registry.counter obs "net.engine.events_cancelled";
      g_pending = Obs.Registry.gauge obs "net.engine.pending";
      g_ratio = Obs.Registry.gauge obs "net.engine.sim_wall_ratio"
    }
  in
  (* Spans and any clocked instrumentation sharing this registry measure
     simulated, not wall, time. *)
  Obs.Registry.set_clock obs (fun () -> t.clock);
  t

let obs t = t.obs
let now t = t.clock
let now_s t = Int64.to_float t.clock *. 1e-9

let schedule t ~delay f =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.schedule: negative delay";
  let ev = { f; cancelled = false } in
  Pqueue.push t.q (Int64.add t.clock delay) t.seq ev;
  t.seq <- t.seq + 1;
  t.scheduled <- t.scheduled + 1;
  Obs.Counter.inc t.c_scheduled;
  ev

let schedule_s t ~delay_s f =
  if delay_s < 0.0 then invalid_arg "Engine.schedule_s: negative delay";
  schedule t ~delay:(Int64.of_float (delay_s *. 1e9)) f

let cancel ev = ev.cancelled <- true

let every t ~period f =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Engine.every: period must be positive";
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      f ();
      if not !stopped then ignore (schedule t ~delay:period tick)
    end
  in
  ignore (schedule t ~delay:period tick);
  fun () -> stopped := true

let check_invariants t =
  if Pqueue.length t.q <> t.scheduled - t.popped then
    invalid_arg "Engine: pending queue inconsistent with scheduled - popped";
  if t.processed > t.popped then
    invalid_arg "Engine: processed exceeds events popped";
  if t.processed > t.scheduled then
    invalid_arg "Engine: processed exceeds events scheduled";
  if Int64.compare t.clock 0L < 0 then invalid_arg "Engine: clock negative"

let run ?until ?max_events t =
  let wall0 = Sys.time () in
  let sim0 = t.clock in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Pqueue.peek_min t.q with
    | None -> continue := false
    | Some (time, _, _) ->
      (match until with
       | Some limit when Int64.compare time limit > 0 -> continue := false
       | Some _ | None ->
         (match Pqueue.pop_min t.q with
          | None -> continue := false
          | Some (time, _, ev) ->
            t.clock <- time;
            t.popped <- t.popped + 1;
            if ev.cancelled then Obs.Counter.inc t.c_cancelled
            else begin
              decr budget;
              t.processed <- t.processed + 1;
              Obs.Counter.inc t.c_processed;
              ev.f ()
            end))
  done;
  Obs.Gauge.set_int t.g_pending (Pqueue.length t.q);
  let wall = Sys.time () -. wall0 in
  let sim_ns = Int64.to_float (Int64.sub t.clock sim0) in
  if wall > 0.0 && sim_ns > 0.0 then
    Obs.Gauge.set t.g_ratio (sim_ns /. (wall *. 1e9));
  check_invariants t

let pending t = Pqueue.length t.q
let processed t = t.processed
let scheduled t = t.scheduled
