(* The event engine, sharded. A shard owns a private event heap, clock
   and sequence counter; shard count 1 runs the exact sequential loop
   the rest of the stack has always used (one queue, one clock, global
   FIFO tie-break). With more shards, [run] advances the simulation in
   conservative-lookahead rounds: every round processes, on every shard
   concurrently, the events strictly below [min next event + lookahead],
   and cross-shard events — which the lookahead bound guarantees land at
   or beyond that horizon — travel through per-source outboxes merged by
   the coordinator at the round barrier. Determinism comes from
   ownership, not scheduling: each shard's heap is touched only by the
   domain processing it, and the merge walks source shards in index
   order, so the destination sequence numbers (the FIFO tie-break) are
   identical no matter how the OS schedules the round's domains. *)

type event = { f : unit -> unit; mutable cancelled : bool }

type shard = {
  id : int;
  q : event Pqueue.t;
  mutable sclock : int64;
  mutable sseq : int;
  mutable sprocessed : int;
  mutable sscheduled : int;
  mutable spopped : int;
  (* Cross-shard events posted while this shard executes a round:
     (destination shard, absolute time, event), FIFO. Only this shard
     appends during a round; only the coordinator drains at the
     barrier. *)
  outbox : (int * int64 * event) Queue.t;
  (* Per-shard processed counter, resolved on the coordinator at
     [create] (registry mutation is not domain-safe) and bumped from
     whichever domain runs the shard (counter increments are atomic). *)
  c_shard : Obs.Counter.t option;
}

type t = {
  shards : shard array;
  lookahead : int64; (* 0 when single-shard; > 0 otherwise *)
  mutable clock : int64; (* coordinator clock: per event when
                            single-shard, per round otherwise *)
  mutable nrounds : int; (* barrier rounds completed (sharded only) *)
  mutable in_round : bool;
  mutable horizon : int64; (* exclusive bound of the round in flight *)
  obs : Obs.Registry.t;
  c_processed : Obs.Counter.t;
  c_scheduled : Obs.Counter.t;
  c_cancelled : Obs.Counter.t;
  c_rounds : Obs.Counter.t option; (* sharded engines only *)
  g_pending : Obs.Gauge.t;
  g_ratio : Obs.Gauge.t;
}

type handle = event

exception
  Lookahead_violation of {
    src : int;
    dst : int;
    at : int64;
    horizon : int64;
  }

let () =
  Printexc.register_printer (function
    | Lookahead_violation { src; dst; at; horizon } ->
      Some
        (Printf.sprintf
           "Engine.Lookahead_violation(shard %d -> %d at %Ld, safe horizon \
            %Ld)"
           src dst at horizon)
    | _ -> None)

(* Which shard the current domain is executing, set for the duration of
   one shard's slice of a round ([-1] outside). Routes [schedule]/[post]
   calls made from inside event handlers to the shard that owns the
   caller, without threading a context through every closure. *)
let executing_shard : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let create ?(obs = Obs.Registry.default) ?capacity ?(shards = 1) ?lookahead
    ?topo () =
  (* Validate here with engine-phrased errors rather than letting the
     heap's array allocation raise something about Pqueue internals. *)
  let capacity =
    match capacity with
    | None -> 0
    | Some c ->
      if c <= 0 then
        invalid_arg "Engine.create: capacity must be positive when given";
      c
  in
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  (* The lookahead auto-tuner: with a topology in hand the largest safe
     conservative window is known exactly — the smallest latency of any
     link crossing shards under [Topology.shard_of]. An explicit
     [lookahead] still wins (it must then under-state, never over-state,
     that minimum); a topology with no cross-shard links makes any
     window safe. *)
  let lookahead =
    match lookahead with
    | Some l ->
      if shards > 1 && Int64.compare l 0L <= 0 then
        invalid_arg
          "Engine.create: a sharded engine needs a positive lookahead (the \
           minimum cross-shard event latency)";
      l
    | None ->
      if shards = 1 then 0L
      else begin
        match topo with
        | None ->
          invalid_arg
            "Engine.create: a sharded engine needs either an explicit \
             lookahead or a topology to auto-tune it from"
        | Some topo ->
          (match Topology.cross_shard_lookahead topo ~shards with
           | Some l -> l
           | None -> Int64.max_int)
      end
  in
  let t =
    { shards =
        Array.init shards (fun id ->
            { id;
              q = Pqueue.create ~capacity ();
              sclock = 0L;
              sseq = 0;
              sprocessed = 0;
              sscheduled = 0;
              spopped = 0;
              outbox = Queue.create ();
              c_shard =
                (if shards = 1 then None
                 else
                   Some
                     (Obs.Registry.counter obs
                        ~labels:[ ("shard", string_of_int id) ]
                        "net.engine.shard_processed"))
            });
      lookahead = (if shards = 1 then 0L else lookahead);
      clock = 0L;
      nrounds = 0;
      in_round = false;
      horizon = 0L;
      obs;
      c_processed = Obs.Registry.counter obs "net.engine.events_processed";
      c_scheduled = Obs.Registry.counter obs "net.engine.events_scheduled";
      c_cancelled = Obs.Registry.counter obs "net.engine.events_cancelled";
      c_rounds =
        (if shards = 1 then None
         else Some (Obs.Registry.counter obs "net.engine.rounds"));
      g_pending = Obs.Registry.gauge obs "net.engine.pending";
      g_ratio = Obs.Registry.gauge obs "net.engine.sim_wall_ratio"
    }
  in
  (* Spans and any clocked instrumentation sharing this registry measure
     simulated, not wall, time. *)
  Obs.Registry.set_clock obs (fun () -> t.clock);
  t

let obs t = t.obs

(* Inside a handler, "now" is the executing event's timestamp — the
   shard's own clock, not the coordinator's round base. Anything built
   on [now] (link serialization, packet timestamps) therefore behaves
   identically at every shard count; the round base is a scheduling
   artifact that must never leak into the simulation. *)
let now t =
  let i = Domain.DLS.get executing_shard in
  if i >= 0 && i < Array.length t.shards then t.shards.(i).sclock else t.clock

let now_s t = Int64.to_float (now t) *. 1e-9
let shards t = Array.length t.shards
let lookahead t = t.lookahead
let rounds t = t.nrounds

let shard_now t ~shard =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Engine.shard_now: unknown shard";
  t.shards.(shard).sclock

(* The shard a call made right now should act on: the shard this domain
   is executing (inside a handler), else shard 0 — which for the
   single-shard engine is the engine. *)
let calling_shard t =
  let i = Domain.DLS.get executing_shard in
  if i >= 0 && i < Array.length t.shards then t.shards.(i) else t.shards.(0)

let push_event s ~time ev =
  Pqueue.push s.q time s.sseq ev;
  s.sseq <- s.sseq + 1;
  s.sscheduled <- s.sscheduled + 1

let schedule t ~delay f =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.schedule: negative delay";
  let s = calling_shard t in
  let base = if Array.length t.shards = 1 then t.clock else s.sclock in
  let ev = { f; cancelled = false } in
  push_event s ~time:(Int64.add base delay) ev;
  Obs.Counter.inc t.c_scheduled;
  ev

let schedule_s t ~delay_s f =
  if delay_s < 0.0 then invalid_arg "Engine.schedule_s: negative delay";
  schedule t ~delay:(Int64.of_float (delay_s *. 1e9)) f

let post t ~shard ~at f =
  let n = Array.length t.shards in
  if shard < 0 || shard >= n then invalid_arg "Engine.post: unknown shard";
  let dst = t.shards.(shard) in
  let ev = { f; cancelled = false } in
  let src_id = Domain.DLS.get executing_shard in
  if src_id >= 0 && src_id < n && src_id <> shard && t.in_round then begin
    (* Cross-shard, from inside a round: the destination heap belongs to
       another domain right now, so the event must clear the round's
       safe horizon and wait in the outbox for the barrier. *)
    if Int64.compare at t.horizon < 0 then
      raise (Lookahead_violation { src = src_id; dst = shard; at; horizon = t.horizon });
    Queue.add (shard, at, ev) t.shards.(src_id).outbox
  end
  else begin
    (* Same shard, or the coordinator between rounds: a direct push.
       Time may not run backwards past the target shard's clock. *)
    let floor =
      if src_id >= 0 && src_id < n then t.shards.(src_id).sclock
      else if n = 1 then t.clock
      else dst.sclock
    in
    if Int64.compare at floor < 0 then
      invalid_arg "Engine.post: event scheduled in the past";
    push_event dst ~time:at ev
  end;
  Obs.Counter.inc t.c_scheduled;
  ev

let cancel ev = ev.cancelled <- true

let every t ~period f =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Engine.every: period must be positive";
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      f ();
      if not !stopped then ignore (schedule t ~delay:period tick)
    end
  in
  ignore (schedule t ~delay:period tick);
  fun () -> stopped := true

let pending t =
  Array.fold_left
    (fun acc s -> acc + Pqueue.length s.q + Queue.length s.outbox)
    0 t.shards

let processed t = Array.fold_left (fun acc s -> acc + s.sprocessed) 0 t.shards
let scheduled t = Array.fold_left (fun acc s -> acc + s.sscheduled) 0 t.shards

let check_invariants t =
  Array.iter
    (fun s ->
      if Pqueue.length s.q <> s.sscheduled - s.spopped then
        invalid_arg "Engine: pending queue inconsistent with scheduled - popped";
      if s.sprocessed > s.spopped then
        invalid_arg "Engine: processed exceeds events popped";
      if not (Queue.is_empty s.outbox) then
        invalid_arg "Engine: outbox not drained at a round barrier";
      if Int64.compare s.sclock 0L < 0 then invalid_arg "Engine: clock negative")
    t.shards;
  if processed t > scheduled t then
    invalid_arg "Engine: processed exceeds events scheduled";
  if Int64.compare t.clock 0L < 0 then invalid_arg "Engine: clock negative"

(* ---- shard count 1: the sequential engine, unchanged ---- *)

let run_sequential ?until ?max_events t =
  let s = t.shards.(0) in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Pqueue.peek_min s.q with
    | None -> continue := false
    | Some (time, _, _) ->
      (match until with
       | Some limit when Int64.compare time limit > 0 -> continue := false
       | Some _ | None ->
         (match Pqueue.pop_min s.q with
          | None -> continue := false
          | Some (time, _, ev) ->
            t.clock <- time;
            s.sclock <- time;
            s.spopped <- s.spopped + 1;
            if ev.cancelled then Obs.Counter.inc t.c_cancelled
            else begin
              decr budget;
              s.sprocessed <- s.sprocessed + 1;
              Obs.Counter.inc t.c_processed;
              ev.f ()
            end))
  done

(* ---- shard count > 1: conservative-lookahead rounds ---- *)

(* Drain one shard up to the (exclusive) horizon, also honoring the
   [until] bound exactly as the sequential loop does (events with
   [time > until] stay queued). Runs on whichever domain the round
   assigned this shard to; touches only shard-owned state, atomic obs
   counters, and — through handlers calling [post]/[schedule] — this
   shard's own heap and outbox. *)
let process_shard t ~horizon ~until s =
  Domain.DLS.set executing_shard s.id;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set executing_shard (-1))
    (fun () ->
      let continue = ref true in
      while !continue do
        if Pqueue.is_empty s.q then continue := false
        else begin
          let tmin = Int64.of_int (Pqueue.min_time s.q) in
          if
            Int64.compare tmin horizon >= 0
            || (match until with
                | Some limit -> Int64.compare tmin limit > 0
                | None -> false)
          then continue := false
          else
            match Pqueue.pop_min s.q with
            | None -> continue := false
            | Some (time, _, ev) ->
              s.sclock <- time;
              s.spopped <- s.spopped + 1;
              if ev.cancelled then Obs.Counter.inc t.c_cancelled
              else begin
                s.sprocessed <- s.sprocessed + 1;
                Obs.Counter.inc t.c_processed;
                (match s.c_shard with Some c -> Obs.Counter.inc c | None -> ());
                ev.f ()
              end
        end
      done)

(* Merge every outbox into the destination heaps, walking source shards
   in index order so destination sequence numbers — the FIFO tie-break —
   are a pure function of the simulation, not of domain scheduling. *)
let merge_outboxes t =
  Array.iter
    (fun src ->
      while not (Queue.is_empty src.outbox) do
        let dst, at, ev = Queue.pop src.outbox in
        push_event t.shards.(dst) ~time:at ev
      done)
    t.shards

let run_rounds ?pool ?until ?max_events t =
  let nshards = Array.length t.shards in
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    let tmin =
      Array.fold_left (fun acc s -> min acc (Pqueue.min_time s.q)) max_int
        t.shards
    in
    if tmin = max_int && Array.for_all (fun s -> Pqueue.is_empty s.q) t.shards
    then continue := false
    else begin
      let tbase = Int64.of_int tmin in
      match until with
      | Some limit when Int64.compare tbase limit > 0 -> continue := false
      | Some _ | None ->
        t.clock <- tbase;
        let horizon =
          let h = Int64.add tbase t.lookahead in
          if Int64.compare h tbase <= 0 then Int64.max_int else h
        in
        t.horizon <- horizon;
        let before = processed t in
        t.in_round <- true;
        Fun.protect
          ~finally:(fun () -> t.in_round <- false)
          (fun () ->
            match pool with
            | None ->
              (* The sequential reference for the parallel execution:
                 same rounds, same horizons, same merge order, one
                 domain. *)
              Array.iter (process_shard t ~horizon ~until) t.shards
            | Some pool ->
              Par.round pool ~n:nshards ~f:(fun i ->
                  process_shard t ~horizon ~until t.shards.(i)));
        merge_outboxes t;
        t.nrounds <- t.nrounds + 1;
        (match t.c_rounds with Some c -> Obs.Counter.inc c | None -> ());
        (* [max_events] is a round-granular bound here: the budget is
           re-checked at each barrier, never mid-round (a mid-round stop
           would make the cut point scheduling-dependent). *)
        budget := !budget - (processed t - before)
    end
  done;
  t.clock <-
    Array.fold_left
      (fun acc s -> if Int64.compare s.sclock acc > 0 then s.sclock else acc)
      t.clock t.shards

let run ?pool ?until ?max_events t =
  let wall0 = Sys.time () in
  let sim0 = t.clock in
  if Array.length t.shards = 1 then run_sequential ?until ?max_events t
  else run_rounds ?pool ?until ?max_events t;
  Obs.Gauge.set_int t.g_pending (pending t);
  let wall = Sys.time () -. wall0 in
  let sim_ns = Int64.to_float (Int64.sub t.clock sim0) in
  if wall > 0.0 && sim_ns > 0.0 then
    Obs.Gauge.set t.g_ratio (sim_ns /. (wall *. 1e9));
  check_invariants t
