type event = { f : unit -> unit; mutable cancelled : bool }

type t = {
  q : event Pqueue.t;
  mutable clock : int64;
  mutable seq : int;
  mutable processed : int;
}

type handle = event

let create () = { q = Pqueue.create (); clock = 0L; seq = 0; processed = 0 }
let now t = t.clock
let now_s t = Int64.to_float t.clock *. 1e-9

let schedule t ~delay f =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.schedule: negative delay";
  let ev = { f; cancelled = false } in
  Pqueue.push t.q (Int64.add t.clock delay) t.seq ev;
  t.seq <- t.seq + 1;
  ev

let schedule_s t ~delay_s f =
  if delay_s < 0.0 then invalid_arg "Engine.schedule_s: negative delay";
  schedule t ~delay:(Int64.of_float (delay_s *. 1e9)) f

let cancel ev = ev.cancelled <- true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Pqueue.peek_min t.q with
    | None -> continue := false
    | Some (time, _, _) ->
      (match until with
       | Some limit when Int64.compare time limit > 0 -> continue := false
       | Some _ | None ->
         (match Pqueue.pop_min t.q with
          | None -> continue := false
          | Some (time, _, ev) ->
            t.clock <- time;
            if not ev.cancelled then begin
              decr budget;
              t.processed <- t.processed + 1;
              ev.f ()
            end))
  done

let pending t = Pqueue.length t.q
let processed t = t.processed
