type node_kind = Host | Router | Neutralizer_box
type domain_id = int
type node_id = int
type relationship = Customer | Peer

type domain = {
  did : domain_id;
  domain_name : string;
  prefix : Ipaddr.Prefix.t;
}

type node = {
  nid : node_id;
  kind : node_kind;
  addr : Ipaddr.t;
  domain : domain_id;
  node_name : string;
}

type edge = {
  a : node_id;
  b : node_id;
  bandwidth_bps : int;
  latency : int64;
  queue_bytes : int;
  rel : relationship option;
}

type t = {
  mutable doms : domain list; (* newest first *)
  mutable next_host : (domain_id, int) Hashtbl.t;
  mutable nods : node list; (* newest first *)
  mutable edgs : edge list;
  by_addr : (Ipaddr.t, node) Hashtbl.t;
  by_id : (node_id, node) Hashtbl.t;
  anycast : (Ipaddr.t, node_id list) Hashtbl.t;
  mutable n_nodes : int;
  mutable n_domains : int;
}

let create () =
  { doms = [];
    next_host = Hashtbl.create 16;
    nods = [];
    edgs = [];
    by_addr = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
    anycast = Hashtbl.create 8;
    n_nodes = 0;
    n_domains = 0
  }

let add_domain t ~name ~prefix =
  let did = t.n_domains in
  t.n_domains <- did + 1;
  let prefix = Ipaddr.Prefix.of_string prefix in
  t.doms <- { did; domain_name = name; prefix } :: t.doms;
  Hashtbl.replace t.next_host did 1;
  did

let domain t did =
  match List.find_opt (fun d -> d.did = did) t.doms with
  | Some d -> d
  | None -> invalid_arg "Topology.domain: unknown domain"

let fresh_address t did =
  let d = domain t did in
  let i = Hashtbl.find t.next_host did in
  Hashtbl.replace t.next_host did (i + 1);
  Ipaddr.Prefix.nth d.prefix i

let add_node t ~domain:did ~kind ~name =
  let addr = fresh_address t did in
  let nid = t.n_nodes in
  t.n_nodes <- nid + 1;
  let n = { nid; kind; addr; domain = did; node_name = name } in
  t.nods <- n :: t.nods;
  Hashtbl.replace t.by_addr addr n;
  Hashtbl.replace t.by_id nid n;
  n

let add_link t a b ~bandwidth_bps ~latency ?(queue_bytes = 128 * 1024) ?rel ()
    =
  if a = b then invalid_arg "Topology.add_link: self loop";
  t.edgs <- { a; b; bandwidth_bps; latency; queue_bytes; rel } :: t.edgs

let register_anycast t addr members =
  Hashtbl.replace t.anycast addr members

let remove_anycast_member t addr nid =
  match Hashtbl.find_opt t.anycast addr with
  | None -> ()
  | Some members ->
    Hashtbl.replace t.anycast addr (List.filter (fun m -> m <> nid) members)

let add_anycast_member t addr nid =
  match Hashtbl.find_opt t.anycast addr with
  | None -> Hashtbl.replace t.anycast addr [ nid ]
  | Some members ->
    if not (List.mem nid members) then
      (* keep the original announcement order: late (re)joins append *)
      Hashtbl.replace t.anycast addr (members @ [ nid ])

let anycast_groups t =
  Hashtbl.fold (fun addr members acc -> (addr, members) :: acc) t.anycast []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let node t nid =
  match Hashtbl.find_opt t.by_id nid with
  | Some n -> n
  | None -> invalid_arg "Topology.node: unknown node"

let nodes t = List.rev t.nods
let domains t = List.rev t.doms
let edges t = List.rev t.edgs
let node_count t = t.n_nodes
let node_of_addr t addr = Hashtbl.find_opt t.by_addr addr

let node_by_name t name =
  List.find_opt (fun n -> n.node_name = name) t.nods

let anycast_members t addr =
  match Hashtbl.find_opt t.anycast addr with
  | Some l -> l
  | None -> []

let domain_of_addr t addr =
  let candidates =
    List.filter (fun d -> Ipaddr.Prefix.mem addr d.prefix) t.doms
  in
  match
    List.sort
      (fun d1 d2 ->
        Stdlib.compare
          (Ipaddr.Prefix.length d2.prefix)
          (Ipaddr.Prefix.length d1.prefix))
      candidates
  with
  | d :: _ -> Some d
  | [] -> None

(* Shard assignment for the parallel event engine: nodes of one domain
   stay together (intra-domain traffic is the chatty part), domains are
   striped round-robin across shards. *)
let shard_of t ~shards nid =
  if shards < 1 then invalid_arg "Topology.shard_of: shards must be >= 1";
  (node t nid).domain mod shards

let cross_shard_lookahead t ~shards =
  List.fold_left
    (fun acc e ->
      if shard_of t ~shards e.a = shard_of t ~shards e.b then acc
      else
        match acc with
        | None -> Some e.latency
        | Some l -> if Int64.compare e.latency l < 0 then Some e.latency else acc)
    None t.edgs

let in_domain t addr did =
  match domain_of_addr t addr with
  | Some d -> d.did = did
  | None -> false
