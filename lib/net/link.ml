type stats = {
  sent_packets : int;
  sent_bytes : int;
  dropped_packets : int;
  dropped_bytes : int;
  max_queue_bytes : int;
}

type drop_reason = Queue_full | Link_down | Shed

type send_result = Sent | Dropped of drop_reason

type gate = Packet.t -> bool

type perturb = Packet.t -> (Packet.t * int64) list

(* The running totals live in the engine's obs registry as monotonic
   counters (family net.link.*, labeled by link); the [stats]/
   [reset_stats] API is preserved by subtracting the baseline captured
   at the last reset. *)
type t = {
  engine : Engine.t;
  bandwidth_bps : int;
  latency : int64;
  queue_capacity : int;
  deliver : Packet.t -> unit;
  c_sent_packets : Obs.Counter.t;
  c_sent_bytes : Obs.Counter.t;
  c_dropped_packets : Obs.Counter.t;
  c_dropped_bytes : Obs.Counter.t;
  c_drop_queue : Obs.Counter.t;
  c_drop_down : Obs.Counter.t;
  c_drop_shed : Obs.Counter.t;
  h_queue : Obs.Histogram.t;
  mutable up : bool;
  mutable perturb : perturb option;
  mutable gate : gate option;
  mutable queued_bytes : int;
  mutable busy_until : int64;
  mutable max_queue_bytes : int;
  mutable base_sent_packets : int;
  mutable base_sent_bytes : int;
  mutable base_dropped_packets : int;
  mutable base_dropped_bytes : int;
}

let anon_seq = ref 0

let create engine ~bandwidth_bps ~latency ?(queue_bytes = 128 * 1024) ?label
    ~deliver () =
  if bandwidth_bps <= 0 then invalid_arg "Link.create: bandwidth must be positive";
  let label =
    match label with
    | Some l -> l
    | None ->
      incr anon_seq;
      Printf.sprintf "link-%d" !anon_seq
  in
  let obs = Engine.obs engine in
  let labels = [ ("link", label) ] in
  let drop_counter reason =
    Obs.Registry.counter obs
      ~labels:(("reason", reason) :: labels)
      "net.link.drops"
  in
  { engine;
    bandwidth_bps;
    latency;
    queue_capacity = queue_bytes;
    deliver;
    c_sent_packets = Obs.Registry.counter obs ~labels "net.link.sent_packets";
    c_sent_bytes = Obs.Registry.counter obs ~labels "net.link.sent_bytes";
    c_dropped_packets =
      Obs.Registry.counter obs ~labels "net.link.dropped_packets";
    c_dropped_bytes = Obs.Registry.counter obs ~labels "net.link.dropped_bytes";
    c_drop_queue = drop_counter "queue";
    c_drop_down = drop_counter "down";
    c_drop_shed = drop_counter "shed";
    h_queue =
      Obs.Registry.histogram obs ~labels "net.link.queue_occupancy_bytes";
    up = true;
    perturb = None;
    gate = None;
    queued_bytes = 0;
    busy_until = 0L;
    max_queue_bytes = 0;
    base_sent_packets = 0;
    base_sent_bytes = 0;
    base_dropped_packets = 0;
    base_dropped_bytes = 0
  }

let transmission_time t bytes =
  (* ns = bytes * 8 * 1e9 / bandwidth; computed in int64 to avoid
     overflow on large byte counts. *)
  Int64.div
    (Int64.mul (Int64.of_int (bytes * 8)) 1_000_000_000L)
    (Int64.of_int t.bandwidth_bps)

let set_up t up = t.up <- up
let is_up t = t.up
let latency t = t.latency
let set_perturb t f = t.perturb <- f
let set_gate t f = t.gate <- f

let count_drop t bytes reason =
  Obs.Counter.inc t.c_dropped_packets;
  Obs.Counter.add t.c_dropped_bytes bytes;
  Obs.Counter.inc
    (match reason with
    | Queue_full -> t.c_drop_queue
    | Link_down -> t.c_drop_down
    | Shed -> t.c_drop_shed)

(* End of serialization: hand the packet to the propagation stage, where
   the fault layer's perturbation hook may lose, corrupt, duplicate or
   delay (reorder) the wire image. *)
let propagate t p =
  let deliveries =
    match t.perturb with None -> [ (p, 0L) ] | Some f -> f p
  in
  List.iter
    (fun (p, extra) ->
      ignore
        (Engine.schedule t.engine ~delay:(Int64.add t.latency extra) (fun () ->
             t.deliver p)))
    deliveries

let send t p =
  let bytes = Packet.size p in
  if not t.up then begin
    count_drop t bytes Link_down;
    Dropped Link_down
  end
  else if
    (* Policy shedding is checked before the queue so an admission
       decision is never misread as congestion (distinct drop reason,
       distinct counter). *)
    match t.gate with Some g -> not (g p) | None -> false
  then begin
    count_drop t bytes Shed;
    Dropped Shed
  end
  else if t.queued_bytes + bytes > t.queue_capacity then begin
    count_drop t bytes Queue_full;
    Dropped Queue_full
  end
  else begin
    let now = Engine.now t.engine in
    t.queued_bytes <- t.queued_bytes + bytes;
    if t.queued_bytes > t.max_queue_bytes then
      t.max_queue_bytes <- t.queued_bytes;
    Obs.Histogram.add t.h_queue t.queued_bytes;
    let start = if Int64.compare t.busy_until now > 0 then t.busy_until else now in
    let done_tx = Int64.add start (transmission_time t bytes) in
    t.busy_until <- done_tx;
    (* Dequeue at end of serialization; deliver after propagation. A
       link taken down mid-serialization drops the in-flight packet. *)
    ignore
      (Engine.schedule t.engine
         ~delay:(Int64.sub done_tx now)
         (fun () ->
           t.queued_bytes <- t.queued_bytes - bytes;
           if not t.up then count_drop t bytes Link_down
           else begin
             Obs.Counter.inc t.c_sent_packets;
             Obs.Counter.add t.c_sent_bytes bytes;
             propagate t p
           end));
    Sent
  end

let stats t =
  { sent_packets = Obs.Counter.value t.c_sent_packets - t.base_sent_packets;
    sent_bytes = Obs.Counter.value t.c_sent_bytes - t.base_sent_bytes;
    dropped_packets =
      Obs.Counter.value t.c_dropped_packets - t.base_dropped_packets;
    dropped_bytes = Obs.Counter.value t.c_dropped_bytes - t.base_dropped_bytes;
    max_queue_bytes = t.max_queue_bytes
  }

let queue_occupancy t = t.queued_bytes

let reset_stats t =
  t.base_sent_packets <- Obs.Counter.value t.c_sent_packets;
  t.base_sent_bytes <- Obs.Counter.value t.c_sent_bytes;
  t.base_dropped_packets <- Obs.Counter.value t.c_dropped_packets;
  t.base_dropped_bytes <- Obs.Counter.value t.c_dropped_bytes;
  t.max_queue_bytes <- t.queued_bytes
