type stats = {
  sent_packets : int;
  sent_bytes : int;
  dropped_packets : int;
  dropped_bytes : int;
  max_queue_bytes : int;
}

type t = {
  engine : Engine.t;
  bandwidth_bps : int;
  latency : int64;
  queue_capacity : int;
  deliver : Packet.t -> unit;
  mutable queued_bytes : int;
  mutable busy_until : int64;
  mutable sent_packets : int;
  mutable sent_bytes : int;
  mutable dropped_packets : int;
  mutable dropped_bytes : int;
  mutable max_queue_bytes : int;
}

let create engine ~bandwidth_bps ~latency ?(queue_bytes = 128 * 1024) ~deliver
    () =
  if bandwidth_bps <= 0 then invalid_arg "Link.create: bandwidth must be positive";
  { engine;
    bandwidth_bps;
    latency;
    queue_capacity = queue_bytes;
    deliver;
    queued_bytes = 0;
    busy_until = 0L;
    sent_packets = 0;
    sent_bytes = 0;
    dropped_packets = 0;
    dropped_bytes = 0;
    max_queue_bytes = 0
  }

let transmission_time t bytes =
  (* ns = bytes * 8 * 1e9 / bandwidth; computed in int64 to avoid
     overflow on large byte counts. *)
  Int64.div
    (Int64.mul (Int64.of_int (bytes * 8)) 1_000_000_000L)
    (Int64.of_int t.bandwidth_bps)

let send t p =
  let bytes = Packet.size p in
  if t.queued_bytes + bytes > t.queue_capacity then begin
    t.dropped_packets <- t.dropped_packets + 1;
    t.dropped_bytes <- t.dropped_bytes + bytes;
    false
  end
  else begin
    let now = Engine.now t.engine in
    t.queued_bytes <- t.queued_bytes + bytes;
    if t.queued_bytes > t.max_queue_bytes then
      t.max_queue_bytes <- t.queued_bytes;
    let start = if Int64.compare t.busy_until now > 0 then t.busy_until else now in
    let done_tx = Int64.add start (transmission_time t bytes) in
    t.busy_until <- done_tx;
    (* Dequeue at end of serialization; deliver after propagation. *)
    ignore
      (Engine.schedule t.engine
         ~delay:(Int64.sub done_tx now)
         (fun () ->
           t.queued_bytes <- t.queued_bytes - bytes;
           t.sent_packets <- t.sent_packets + 1;
           t.sent_bytes <- t.sent_bytes + bytes;
           ignore
             (Engine.schedule t.engine ~delay:t.latency (fun () ->
                  t.deliver p))));
    true
  end

let stats t =
  { sent_packets = t.sent_packets;
    sent_bytes = t.sent_bytes;
    dropped_packets = t.dropped_packets;
    dropped_bytes = t.dropped_bytes;
    max_queue_bytes = t.max_queue_bytes
  }

let queue_occupancy t = t.queued_bytes

let reset_stats t =
  t.sent_packets <- 0;
  t.sent_bytes <- 0;
  t.dropped_packets <- 0;
  t.dropped_bytes <- 0;
  t.max_queue_bytes <- 0
