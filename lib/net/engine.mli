(** Discrete-event simulation core.

    Time is a simulated clock in nanoseconds, advanced only by event
    processing; wall-clock cost of the crypto operations is charged
    separately by the processing-cost model in {!Network}.

    The engine owns an {!Obs.Registry.t} (the process-global default
    unless one is passed to {!create}) and points its clock at simulated
    time, so spans and clocked metrics recorded anywhere in the stack
    measure simulation time. It publishes:
    [net.engine.events_processed], [net.engine.events_scheduled],
    [net.engine.events_cancelled] (counters), [net.engine.pending]
    (gauge, sampled when {!run} returns) and
    [net.engine.sim_wall_ratio] (gauge: simulated ns per wall-clock ns
    of the last {!run}). *)

type t

val create : ?obs:Obs.Registry.t -> ?capacity:int -> unit -> t
(** [obs] defaults to {!Obs.Registry.default}; the registry's clock is
    pointed at this engine's simulated time. [capacity] (default 0)
    pre-sizes the event heap so a run with a known event population
    never pays a heap resize. *)

val obs : t -> Obs.Registry.t
(** The registry this engine (and the network built on it) records
    into. *)

val now : t -> int64
(** Current simulated time in nanoseconds. *)

val now_s : t -> float
(** Current simulated time in seconds. *)

type handle

val schedule : t -> delay:int64 -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative — a negative delay raises [Invalid_argument] rather
    than being clamped. Events scheduled for the same instant run in
    scheduling order. *)

val schedule_s : t -> delay_s:float -> (unit -> unit) -> handle
(** Same with the delay in (fractional) seconds. *)

val cancel : handle -> unit
(** Cancelling an already-run or already-cancelled event is a no-op. *)

val every : t -> period:int64 -> (unit -> unit) -> unit -> unit
(** [every t ~period f] runs [f] each [period] ns, first at
    [now + period], until the returned stopper is called. The recurring
    event keeps the queue non-empty, so bound runs with [~until].
    [period] must be positive. Periodic housekeeping — GC sweeps, key
    rotation, fault flapping — is built on this. *)

val run : ?until:int64 -> ?max_events:int -> t -> unit
(** [run t] processes events until the queue is empty, the optional
    simulated-time bound [until] is passed, or [max_events] have run.
    Checks {!check_invariants} before returning. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    discarded). *)

val processed : t -> int
(** Total events executed since creation. *)

val scheduled : t -> int
(** Total events ever scheduled since creation. *)

val check_invariants : t -> unit
(** Raises [Invalid_argument] if the engine's bookkeeping is
    inconsistent: the queue length must equal scheduled minus popped
    events, processed events can exceed neither, and the clock must be
    non-negative. Called automatically at the end of every {!run}. *)
