(** Discrete-event simulation core.

    Time is a simulated clock in nanoseconds, advanced only by event
    processing; wall-clock cost of the crypto operations is charged
    separately by the processing-cost model in {!Network}. *)

type t

val create : unit -> t

val now : t -> int64
(** Current simulated time in nanoseconds. *)

val now_s : t -> float
(** Current simulated time in seconds. *)

type handle

val schedule : t -> delay:int64 -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative. Events scheduled for the same instant run in scheduling
    order. *)

val schedule_s : t -> delay_s:float -> (unit -> unit) -> handle
(** Same with the delay in (fractional) seconds. *)

val cancel : handle -> unit
(** Cancelling an already-run or already-cancelled event is a no-op. *)

val run : ?until:int64 -> ?max_events:int -> t -> unit
(** [run t] processes events until the queue is empty, the optional
    simulated-time bound [until] is passed, or [max_events] have run. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    discarded). *)

val processed : t -> int
(** Total events executed since creation. *)
