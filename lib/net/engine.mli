(** Discrete-event simulation core, sharded.

    Time is a simulated clock in nanoseconds, advanced only by event
    processing; wall-clock cost of the crypto operations is charged
    separately by the processing-cost model in {!Network}.

    {2 Shards and conservative lookahead}

    An engine owns [shards >= 1] event lanes, each with a private heap,
    clock and FIFO sequence counter. The default — and the only mode the
    packet-level {!Network} stack uses — is one shard, which runs the
    exact sequential loop this engine has always had. With more shards,
    {!run} advances the simulation in {e conservative-lookahead rounds}:

    - every round starts at [T], the minimum next-event time across all
      shards, and processes on every shard (concurrently, when a
      {!Par.pool} is supplied) exactly the events with time strictly
      below the safe horizon [T + lookahead];
    - [lookahead] must be a lower bound on cross-shard event latency —
      in a network partitioned by domains, the smallest latency of any
      link crossing shards ({!Topology.cross_shard_lookahead});
    - an event {!post}ed to another shard during a round must land at or
      beyond the horizon; the engine {e raises}
      {!Lookahead_violation} rather than silently reordering;
    - cross-shard events wait in per-source outboxes and are merged at
      the round barrier in source-shard index order, so destination
      sequence numbers — the tie-break for simultaneous events — do not
      depend on domain scheduling.

    Running the same sharded engine with no pool executes the identical
    rounds on one domain, which is the sequential reference the
    equivalence tests ([test/test_pdes.ml]) pin parallel runs against.

    Handlers executing on a shard may only touch state owned by that
    shard, bump pre-resolved (atomic) obs counters, and call
    {!schedule}/{!post}/{!shard_now} on their own engine; resolving new
    metrics or touching another shard's state is a data race.

    The engine owns an {!Obs.Registry.t} (the process-global default
    unless one is passed to {!create}) and points its clock at simulated
    time. It publishes [net.engine.events_processed],
    [net.engine.events_scheduled], [net.engine.events_cancelled]
    (counters), [net.engine.pending] (gauge, sampled when {!run}
    returns) and [net.engine.sim_wall_ratio] (gauge). Sharded engines
    additionally publish [net.engine.rounds] and a per-shard
    [net.engine.shard_processed{shard}] family — resolved on the
    coordinator at {!create}, bumped atomically from worker domains. *)

type t

exception
  Lookahead_violation of {
    src : int;  (** shard whose handler posted the event *)
    dst : int;  (** destination shard *)
    at : int64;  (** requested absolute delivery time *)
    horizon : int64;  (** the round's safe horizon it fell below *)
  }
(** Raised by {!post} when a cross-shard event would land inside the
    current round's window — the destination may already have advanced
    past that instant, so delivering it would reorder the timeline. A
    correct workload never triggers this: it means the configured
    [lookahead] overstates the real minimum cross-shard latency. *)

val create :
  ?obs:Obs.Registry.t ->
  ?capacity:int ->
  ?shards:int ->
  ?lookahead:int64 ->
  ?topo:Topology.t ->
  unit ->
  t
(** [obs] defaults to {!Obs.Registry.default}; the registry's clock is
    pointed at this engine's simulated time. [capacity] pre-sizes each
    shard's event heap so a run with a known event population never pays
    a heap resize; when given it must be positive — non-positive values
    raise [Invalid_argument] here rather than surfacing as an array
    allocation error from heap internals. [shards] (default 1) is the
    number of event lanes.

    [lookahead] (nanoseconds) is the conservative window; when omitted
    on a sharded engine the {e auto-tuner} derives it from [topo] as
    {!Topology.cross_shard_lookahead} — the largest window that is still
    safe for that topology (unbounded when no link crosses shards). An
    explicit [lookahead] must be positive when [shards > 1]; omitting
    both [lookahead] and [topo] on a sharded engine raises
    [Invalid_argument]. Single-shard engines ignore both. *)

val obs : t -> Obs.Registry.t
(** The registry this engine (and the network built on it) records
    into. *)

val now : t -> int64
(** Current simulated time in nanoseconds. Inside an event handler this
    is the executing event's timestamp on {e every} engine — on a
    sharded engine the handler's own shard clock, never the round base —
    so time-dependent code (link serialization, packet timestamps)
    behaves identically at every shard count. From the coordinator
    between rounds it is the engine clock. *)

val now_s : t -> float
(** Current simulated time in seconds. *)

val shards : t -> int
(** Number of event lanes (1 for the sequential engine). *)

val lookahead : t -> int64
(** The conservative lookahead in effect (configured or auto-tuned);
    [0L] on a single-shard engine. *)

val rounds : t -> int
(** Barrier rounds completed so far — the denominator of any
    round-overhead profile. Always [0] on a single-shard engine. *)

val shard_now : t -> shard:int -> int64
(** [shard_now t ~shard] is that shard's local clock: the timestamp of
    its last processed event. Meaningful from the shard's own handlers
    and from the coordinator between rounds. *)

type handle

val schedule : t -> delay:int64 -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [delay] nanoseconds after the
    caller's clock — the engine clock from the coordinator, the
    executing shard's clock from inside a handler (the event stays on
    that shard). [delay] must be non-negative — a negative delay raises
    [Invalid_argument] rather than being clamped. Events scheduled for
    the same instant on the same shard run in scheduling order. *)

val schedule_s : t -> delay_s:float -> (unit -> unit) -> handle
(** Same with the delay in (fractional) seconds. *)

val post : t -> shard:int -> at:int64 -> (unit -> unit) -> handle
(** [post t ~shard ~at f] runs [f] at absolute simulated time [at] on
    [shard] — the shard-addressed primitive the PDES workloads are built
    on (it works identically at [shards = 1], where every post lands on
    the only lane). Posting to one's own shard, or from the coordinator
    between rounds, requires [at] not to precede the target's clock
    ([Invalid_argument] otherwise). Posting to {e another} shard from
    inside a round requires [at >= horizon] of the round in flight and
    raises {!Lookahead_violation} below it — never a silent reorder. *)

val cancel : handle -> unit
(** Cancelling an already-run or already-cancelled event is a no-op.
    Cancel only from the shard that owns the event (or the coordinator
    between rounds). *)

val every : t -> period:int64 -> (unit -> unit) -> unit -> unit
(** [every t ~period f] runs [f] each [period] ns, first at
    [now + period], until the returned stopper is called. The recurring
    event keeps the queue non-empty, so bound runs with [~until].
    [period] must be positive. Periodic housekeeping — GC sweeps, key
    rotation, fault flapping — is built on this. *)

val run : ?pool:Par.pool -> ?until:int64 -> ?max_events:int -> t -> unit
(** [run t] processes events until every queue is empty, the optional
    simulated-time bound [until] is passed, or [max_events] have run.
    On a single-shard engine this is the sequential loop and [pool] is
    ignored. On a sharded engine the rounds execute on [pool] when
    given (one {!Par.round} barrier per window), inline on the calling
    domain otherwise — both orders of execution produce bit-identical
    simulations. [max_events] is exact on a single shard and
    round-granular (checked at each barrier) on a sharded engine.
    Checks {!check_invariants} before returning. *)

val pending : t -> int
(** Number of events still queued across all shards (including
    cancelled ones not yet discarded). *)

val processed : t -> int
(** Total events executed since creation, across all shards. *)

val scheduled : t -> int
(** Total events ever scheduled since creation, across all shards. *)

val check_invariants : t -> unit
(** Raises [Invalid_argument] if the engine's bookkeeping is
    inconsistent: each shard's queue length must equal its scheduled
    minus popped events, processed events can exceed neither, outboxes
    must be empty at a barrier, and no clock may be negative. Called
    automatically at the end of every {!run}. *)
