(** A monomorphic-priority binary min-heap used by the event engine.

    Priorities are [(int64 * int)] pairs compared lexicographically: the
    event timestamp plus an insertion sequence number, which makes the pop
    order of simultaneous events deterministic (FIFO). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> int64 -> int -> 'a -> unit

(** [pop_min q] removes and returns [(time, seq, value)] with the smallest
    priority, or [None] when empty. *)
val pop_min : 'a t -> (int64 * int * 'a) option

(** [peek_min q] like {!pop_min} without removing. *)
val peek_min : 'a t -> (int64 * int * 'a) option
