(** A monomorphic-priority binary min-heap used by the event engine.

    Priorities are [(int64 * int)] pairs compared lexicographically: the
    event timestamp plus an insertion sequence number, which makes the pop
    order of simultaneous events deterministic (FIFO).

    Internally the heap is three parallel arrays ([int] times, [int]
    seqs, values), so pushing an event allocates nothing once capacity is
    reached — no per-entry record, no boxed timestamp retained per
    entry. Timestamps must fit a native 63-bit int (about 146 simulated
    years in nanoseconds); {!push} raises [Invalid_argument] beyond
    that. *)

type 'a t

(** [create ?capacity ()] with [capacity] (default 0) a pre-sizing hint:
    pushes up to it never resize. *)
val create : ?capacity:int -> unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> int64 -> int -> 'a -> unit

(** [pop_min q] removes and returns [(time, seq, value)] with the smallest
    priority, or [None] when empty. *)
val pop_min : 'a t -> (int64 * int * 'a) option

(** [peek_min q] like {!pop_min} without removing. *)
val peek_min : 'a t -> (int64 * int * 'a) option

(** [min_time q] is the timestamp of the minimum entry as a native int,
    or [max_int] when the heap is empty. Allocation-free, unlike
    {!peek_min} — the sharded engine polls every shard's minimum once
    per round to compute the next conservative window. *)
val min_time : 'a t -> int

(** [clear q] empties the heap, keeping its priority-array capacity for
    reuse across runs; value references are dropped. *)
val clear : 'a t -> unit
