(* Seeded generation of Internet-like AS topologies: a preferential-
   attachment (power-law) domain graph with customer/provider edges, a
   settlement-free peering mesh layered on top, and neutralizer boxes in
   the highest-degree (transit-core) domains. Replaces the hand-built
   graphs in Topology for anything that needs hundreds of domains.

   Everything is a pure function of the seed: the generator walks its
   own SplitMix64 stream and touches only ordered Topology state (never
   hashtable iteration order), so the same seed yields the same
   topology byte for byte — property-tested in test/test_scale.ml. *)

type t = {
  topo : Topology.t;
  routers : Topology.node_id array; (* gateway router of domain d *)
  boxes : (Topology.domain_id * Topology.node_id) list;
      (* box domains, descending degree *)
  anycast : Ipaddr.t;
  degrees : int array; (* inter-domain degree of domain d *)
  seed : int;
}

(* SplitMix64, reduced to non-negative native ints. Local rather than
   lib/fault's Prng: fault depends on net, so net grows its own copy of
   the same well-known mixer. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

type rng = { mutable state : int64 }

let rng_create seed = { state = Int64.of_int seed }

let rng_next r =
  r.state <- Int64.add r.state 0x9e3779b97f4a7c15L;
  Int64.to_int (mix64 r.state) land max_int

let rng_below r n = if n <= 1 then 0 else rng_next r mod n

let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let us n = Int64.mul (Int64.of_int n) 1_000L

(* Inter-domain link capacity scales with the provider's current
   degree: a well-attached transit core carries more than a stub uplink. *)
let tier_bandwidth degree =
  if degree >= 16 then 40_000_000_000
  else if degree >= 6 then 10_000_000_000
  else 2_500_000_000

let intra_bandwidth = 20_000_000_000

let generate ?(attach = 2) ?(peer_fraction = 0.15) ?(box_domains = 4)
    ~domains ~seed () =
  if domains < 2 then invalid_arg "Topogen.generate: need at least 2 domains";
  if attach < 1 then invalid_arg "Topogen.generate: attach must be >= 1";
  if box_domains < 1 || box_domains > domains then
    invalid_arg "Topogen.generate: box_domains out of range";
  let rng = rng_create seed in
  let topo = Topology.create () in
  let routers = Array.make domains (-1) in
  for d = 0 to domains - 1 do
    let did =
      Topology.add_domain topo
        ~name:(Printf.sprintf "as%d" d)
        ~prefix:(Printf.sprintf "10.%d.%d.0/24" (1 + (d / 200)) (d mod 200))
    in
    assert (did = d);
    let r =
      Topology.add_node topo ~domain:did ~kind:Router
        ~name:(Printf.sprintf "r%d" d)
    in
    routers.(d) <- r.Topology.nid
  done;
  let degrees = Array.make domains 0 in
  let linked = Hashtbl.create (domains * 4) in
  let connect a b ~bandwidth ~latency ~rel =
    Hashtbl.replace linked (min a b, max a b) ();
    degrees.(a) <- degrees.(a) + 1;
    degrees.(b) <- degrees.(b) + 1;
    Topology.add_link topo routers.(a) routers.(b) ~bandwidth_bps:bandwidth
      ~latency ~rel ()
  in
  (* Fully meshed transit core of [attach + 1] seed domains. *)
  let core = min domains (attach + 1) in
  for a = 0 to core - 1 do
    for b = a + 1 to core - 1 do
      connect a b ~bandwidth:40_000_000_000 ~latency:(ms (2 + rng_below rng 6))
        ~rel:Topology.Peer
    done
  done;
  (* Preferential attachment: every later domain buys transit from
     [attach] distinct providers, each drawn with probability
     proportional to (degree + 1). The provider end of the edge is [a],
     so rel = Customer reads "d is a customer of p" (Routing.hop_kind). *)
  for d = core to domains - 1 do
    let picked = Array.make d false in
    let picks = min attach d in
    for _ = 1 to picks do
      let total = ref 0 in
      for p = 0 to d - 1 do
        if not picked.(p) then total := !total + degrees.(p) + 1
      done;
      let r = ref (rng_below rng !total) in
      let chosen = ref (-1) in
      (try
         for p = 0 to d - 1 do
           if not picked.(p) then begin
             r := !r - (degrees.(p) + 1);
             if !r < 0 then begin
               chosen := p;
               raise Exit
             end
           end
         done
       with Exit -> ());
      let p = if !chosen >= 0 then !chosen else 0 in
      picked.(p) <- true;
      connect p d
        ~bandwidth:(tier_bandwidth degrees.(p))
        ~latency:(ms (2 + rng_below rng 28))
        ~rel:Topology.Customer
    done
  done;
  (* Settlement-free peering mesh on top of the customer tree. *)
  let peers =
    int_of_float (Float.round (peer_fraction *. float_of_int domains))
  in
  let attempts = ref (peers * 8) in
  let added = ref 0 in
  while !added < peers && !attempts > 0 do
    decr attempts;
    let a = rng_below rng domains and b = rng_below rng domains in
    if a <> b && not (Hashtbl.mem linked (min a b, max a b)) then begin
      connect a b ~bandwidth:10_000_000_000
        ~latency:(ms (1 + rng_below rng 10))
        ~rel:Topology.Peer;
      incr added
    end
  done;
  (* Neutralizer boxes in the [box_domains] best-connected domains
     (descending degree, ascending id as the tie-break), all announcing
     one anycast service address. *)
  let order = Array.init domains (fun d -> d) in
  Array.sort
    (fun a b ->
      match compare degrees.(b) degrees.(a) with 0 -> compare a b | c -> c)
    order;
  let boxes =
    List.init box_domains (fun i ->
        let d = order.(i) in
        let n =
          Topology.add_node topo ~domain:d ~kind:Neutralizer_box
            ~name:(Printf.sprintf "nbox%d" d)
        in
        Topology.add_link topo routers.(d) n.Topology.nid
          ~bandwidth_bps:intra_bandwidth ~latency:(us 200) ();
        (d, n.Topology.nid))
  in
  let anycast = Ipaddr.of_string "10.254.0.1" in
  Topology.register_anycast topo anycast (List.map snd boxes);
  { topo; routers; boxes; anycast; degrees; seed }

let client t ~domain ~name ?(bandwidth_bps = 100_000_000)
    ?(latency = ms 1) () =
  if domain < 0 || domain >= Array.length t.routers then
    invalid_arg "Topogen.client: unknown domain";
  let n = Topology.add_node t.topo ~domain ~kind:Host ~name in
  Topology.add_link t.topo t.routers.(domain) n.Topology.nid ~bandwidth_bps
    ~latency ();
  n

(* Canonical 62-bit digest of the generated graph: domains, nodes and
   edges in their stable (insertion-order) listings. Two topologies with
   the same fingerprint are, for the generator's purposes, identical. *)
let fingerprint t =
  let h = ref 0x243f6a8885a308d in
  let fold v = h := Int64.to_int (mix64 (Int64.of_int (!h lxor v))) land max_int in
  List.iter
    (fun (d : Topology.domain) ->
      fold d.did;
      fold (Ipaddr.to_int (Ipaddr.Prefix.network d.prefix));
      String.iter (fun c -> fold (Char.code c)) d.domain_name)
    (Topology.domains t.topo);
  List.iter
    (fun (n : Topology.node) ->
      fold n.nid;
      fold (Ipaddr.to_int n.addr);
      fold n.domain;
      fold (match n.kind with Host -> 1 | Router -> 2 | Neutralizer_box -> 3))
    (Topology.nodes t.topo);
  List.iter
    (fun (e : Topology.edge) ->
      fold e.a;
      fold e.b;
      fold e.bandwidth_bps;
      fold (Int64.to_int e.latency);
      fold
        (match e.rel with
        | None -> 0
        | Some Topology.Customer -> 1
        | Some Topology.Peer -> 2))
    (Topology.edges t.topo);
  !h

let connected t =
  let n = Topology.node_count t.topo in
  if n = 0 then true
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (e : Topology.edge) ->
        adj.(e.a) <- e.b :: adj.(e.a);
        adj.(e.b) <- e.a :: adj.(e.b))
      (Topology.edges t.topo);
    let seen = Array.make n false in
    let q = Queue.create () in
    Queue.add 0 q;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr count;
            Queue.add v q
          end)
        adj.(u)
    done;
    !count = n
  end
