(* Fluid-aggregate hybrid tier: one simulation object per *cohort* —
   thousands of clients in a domain sending to one destination — advanced
   by coarse rate-update events on the step grid t_k = k*dt instead of
   per-packet events. Traffic is integer bytes-per-step flowing along the
   cohort's routed path; link contention uses the previous step's total
   load on each directed edge (one-step-lag fluid approximation).

   Boundary domains — any domain whose policy table is non-empty, plus
   the neutralizer box's domain when it terminates the path — get
   *spill-to-packet* treatment: the fluid stops at the domain's entry
   router and a handful of representative packets carrying the cohort's
   real header fields are injected there, so discrimination policies
   written for the packet tier (middleware chains, TTL, real link
   queues on the box's access link) apply unmodified. The measured pass
   ratio re-scales the cohort's bytes; transit boundaries re-aggregate
   to fluid on egress at the next grid step.

   Determinism under sharding (the digest must be bit-identical at every
   shard count, pool or no pool):
   - per-edge loads live in three rotating arrays of atomic ints: step k
     writes buf[k mod 3] with commutative fetch-and-add (order-free),
     reads buf[(k-1) mod 3], which no step-k event writes; a ticker on
     shard 0 zeroes buf[(k+1) mod 3] at t_k. With dt >= lookahead,
     consecutive grid steps land in different conservative rounds, so
     the round barrier orders writers before readers.
   - cohort statistics are atomic-int accumulators (adds and CAS-max,
     both order-insensitive).
   - every spill injection is timestamped t + segment-latency + a
     per-cohort 1ns jitter, so packet events never tie across cohorts
     and link serialization, queue drops and stateful middleware see one
     deterministic order regardless of how cross-shard outboxes merged.
   - cross-shard spill posts ride the path latency into the boundary
     domain, which includes a cross-shard edge whenever the shard
     changes, so the post lands at or beyond the round horizon by
     construction (no Lookahead_violation on auto-tuned engines). *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* Arrival counters at a spill target, keyed by cohort (= flow id). All
   mutation happens on the station node's shard: the injection event
   resets the cell, delivered probe packets bump it, the harvest event
   reads it half a step later. *)
type cell = {
  mutable a_count : int;
  mutable a_bytes : int;
  mutable a_lat_ns : int64;
}

type station = { cells : (int, cell) Hashtbl.t }

type spill = {
  entry : int;  (* path index where the boundary domain is entered *)
  egress : int;  (* last path index still inside it *)
  terminal : bool;  (* the path ends inside this domain *)
  target : Ipaddr.t;  (* concrete probe destination (never anycast) *)
  station_node : Topology.node_id;
  entry_node : Topology.node_id;
  entry_shard : int;
}

type cohort = {
  id : int;
  app : string;
  protocol : Packet.protocol;
  dscp : int;
  dst_port : int;
  clients : int;
  rate_bps : int;  (* per client *)
  src : Topology.node_id;
  dst : Ipaddr.t;
  path : Topology.node_id array;
  spills : spill array;  (* ascending entry index *)
  shard : int;
  per_step : int;  (* offered bytes per grid step *)
  path_lat_ns : int64;
  mutable offered_bytes : int;  (* cohort-shard events only *)
  delivered_bytes : int Atomic.t;
  spilled_bytes : int Atomic.t;
  spill_sent : int Atomic.t;
  spill_back : int Atomic.t;
  lat_prod : int Atomic.t;  (* sum of delivered-KiB * latency-us chunks *)
  max_lat_us : int Atomic.t;
}

type dir_edge = {
  cap_step : int;  (* bytes the channel carries per dt *)
  e_lat : int64;
  queue : int;
  bw : int;
  idx : int;  (* index into the load buffers *)
}

type stats = {
  cohorts : int;
  clients : int;
  steps : int;
  duration_s : float;
  offered_bytes : int;
  delivered_bytes : int;
  spilled_bytes : int;
  spill_pkts_sent : int;
  spill_pkts_back : int;
  box_goodput_bytes : int;
}

type t = {
  net : Network.t;
  engine : Engine.t;
  topo : Topology.t;
  dt : int64;
  half_dt : int64;
  steps : int;
  spill_pkts : int;
  pkt_bytes : int;
  payload : string;
  dirs : (Topology.node_id * Topology.node_id, dir_edge) Hashtbl.t;
  loads : int Atomic.t array array;  (* 3 rotating buffers x directed edge *)
  stations : (Topology.node_id, station) Hashtbl.t;
  box_goodput : int Atomic.t;
  mutable cohorts_rev : cohort list;
  mutable cohorts : cohort array;
  mutable next_id : int;
  mutable launched : bool;
}

let dt t = t.dt

let create ?(spill_pkts = 8) ?(pkt_bytes = 1200) ~dt ~steps net =
  if steps <= 0 then invalid_arg "Aggregate.create: steps must be positive";
  if Int64.compare dt 0L <= 0 then
    invalid_arg "Aggregate.create: dt must be positive";
  if spill_pkts < 1 then
    invalid_arg "Aggregate.create: spill_pkts must be positive";
  if pkt_bytes < 29 then
    invalid_arg "Aggregate.create: pkt_bytes must cover the 28-byte header";
  let engine = Network.engine net in
  let topo = Network.topology net in
  let la = Engine.lookahead engine in
  if Engine.shards engine > 1 && Int64.equal la Int64.max_int then
    invalid_arg
      "Aggregate.create: sharded engine with unbounded lookahead (no \
       cross-shard link) cannot order the step grid";
  (* dt >= lookahead puts consecutive grid steps in different
     conservative rounds — the happens-before edge the triple-buffered
     load arrays rely on. *)
  let dt = if Int64.compare dt la < 0 then la else dt in
  let edges = Topology.edges topo in
  let ndirs = 2 * List.length edges in
  let dirs = Hashtbl.create (2 * ndirs) in
  List.iteri
    (fun i (e : Topology.edge) ->
      let cap_step =
        Int64.to_int
          (Int64.div
             (Int64.mul (Int64.of_int (e.bandwidth_bps / 8)) dt)
             1_000_000_000L)
      in
      let de idx =
        { cap_step; e_lat = e.latency; queue = e.queue_bytes;
          bw = e.bandwidth_bps; idx }
      in
      Hashtbl.replace dirs (e.a, e.b) (de (2 * i));
      Hashtbl.replace dirs (e.b, e.a) (de ((2 * i) + 1)))
    edges;
  { net;
    engine;
    topo;
    dt;
    half_dt = Int64.max 1L (Int64.div dt 2L);
    steps;
    spill_pkts;
    pkt_bytes;
    payload = String.make (pkt_bytes - 28) 'f';
    dirs;
    loads = Array.init 3 (fun _ -> Array.init ndirs (fun _ -> Atomic.make 0));
    stations = Hashtbl.create 8;
    box_goodput = Atomic.make 0;
    cohorts_rev = [];
    cohorts = [||];
    next_id = 0;
    launched = false
  }

let add_cohort ?(app = "agg") ?(protocol = Packet.Udp) ?(dscp = 0)
    ?(dst_port = 0) t ~src ~dst ~clients ~rate_bps () =
  if t.launched then invalid_arg "Aggregate.add_cohort: already launched";
  if clients <= 0 then invalid_arg "Aggregate.add_cohort: clients must be > 0";
  if rate_bps < 8 then invalid_arg "Aggregate.add_cohort: rate_bps must be >= 8";
  let path =
    match Network.route_path t.net ~from:src dst with
    | None -> invalid_arg "Aggregate.add_cohort: destination unroutable"
    | Some nodes -> Array.of_list nodes
  in
  let n = Array.length path in
  let path_lat = ref 0L in
  for i = 0 to n - 2 do
    match Hashtbl.find_opt t.dirs (path.(i), path.(i + 1)) with
    | Some de -> path_lat := Int64.add !path_lat de.e_lat
    | None ->
      invalid_arg
        "Aggregate.add_cohort: path uses a link added after Aggregate.create"
  done;
  let per_client =
    Int64.to_int
      (Int64.div (Int64.mul (Int64.of_int (rate_bps / 8)) t.dt) 1_000_000_000L)
  in
  let per_step = clients * per_client in
  if per_step <= 0 then
    invalid_arg "Aggregate.add_cohort: rate too small to emit one byte per dt";
  let shards = Engine.shards t.engine in
  let dom i = (Topology.node t.topo path.(i)).Topology.domain in
  let final = Topology.node t.topo path.(n - 1) in
  (* Walk the path's runs of same-domain nodes; every run that enters a
     policed domain — or ends the path at a neutralizer box — becomes a
     spill point. *)
  let spills = ref [] in
  let i = ref 0 in
  while !i < n do
    let d = dom !i in
    let j = ref !i in
    while !j < n - 1 && dom (!j + 1) = d do incr j done;
    let terminal = !j = n - 1 in
    if
      Network.policed t.net d
      || (terminal && final.Topology.kind = Topology.Neutralizer_box)
    then begin
      let entry_node = path.(!i) in
      let station_node = if terminal then path.(n - 1) else entry_node in
      spills :=
        { entry = !i;
          egress = !j;
          terminal;
          target = (Topology.node t.topo station_node).Topology.addr;
          station_node;
          entry_node;
          entry_shard = Topology.shard_of t.topo ~shards entry_node
        }
        :: !spills
    end;
    i := !j + 1
  done;
  let id = t.next_id in
  t.next_id <- id + 1;
  let c =
    { id;
      app;
      protocol;
      dscp;
      dst_port;
      clients;
      rate_bps;
      src;
      dst;
      path;
      spills = Array.of_list (List.rev !spills);
      shard = Topology.shard_of t.topo ~shards src;
      per_step;
      path_lat_ns = !path_lat;
      offered_bytes = 0;
      delivered_bytes = Atomic.make 0;
      spilled_bytes = Atomic.make 0;
      spill_sent = Atomic.make 0;
      spill_back = Atomic.make 0;
      lat_prod = Atomic.make 0;
      max_lat_us = Atomic.make 0
    }
  in
  t.cohorts_rev <- c :: t.cohorts_rev;
  id

(* Unique event timestamps per cohort: +id+1 ns keeps simultaneous
   spills from different cohorts totally ordered by time, so queue and
   middleware state sees one order at every shard count. *)
let jitter c = Int64.of_int (c.id + 1)

let record_delivery (c : cohort) ~through ~lat_ns =
  ignore (Atomic.fetch_and_add c.delivered_bytes through);
  let kb = through / 1024 in
  let us = Int64.to_int (Int64.div lat_ns 1000L) in
  ignore (Atomic.fetch_and_add c.lat_prod (kb * us));
  atomic_max c.max_lat_us us

(* Advance [through] bytes of cohort [c] along the path from [idx] at
   grid step [step]: record offered load on each edge in this step's
   buffer, attenuate by the previous step's total load, stop at the next
   spill point or deliver at the destination. [seg_lat] is latency since
   this fluid segment started (the spill post delay); [lat_ns] is the
   end-to-end accumulator for reporting. *)
let rec walk t c ~step ~s ~idx ~through ~seg_lat ~lat_ns =
  if through > 0 then begin
    if s < Array.length c.spills && c.spills.(s).entry = idx then
      spill t c ~s ~through ~seg_lat ~lat_ns
    else if idx = Array.length c.path - 1 then record_delivery c ~through ~lat_ns
    else begin
      let de = Hashtbl.find t.dirs (c.path.(idx), c.path.(idx + 1)) in
      ignore (Atomic.fetch_and_add t.loads.(step mod 3).(de.idx) through);
      let prev = Atomic.get t.loads.((step + 2) mod 3).(de.idx) in
      let through, qdelay =
        if de.cap_step > 0 && prev > de.cap_step then
          ( through * de.cap_step / prev,
            Int64.div
              (Int64.mul (Int64.of_int (de.queue * 8)) 1_000_000_000L)
              (Int64.of_int de.bw) )
        else (through, 0L)
      in
      let hop = Int64.add de.e_lat qdelay in
      walk t c ~step ~s ~idx:(idx + 1) ~through
        ~seg_lat:(Int64.add seg_lat hop) ~lat_ns:(Int64.add lat_ns hop)
    end
  end

and spill t c ~s ~through ~seg_lat ~lat_ns =
  let sp = c.spills.(s) in
  (* Rides the accumulated segment latency: when the entry node is on
     another shard the segment crossed shards, so seg_lat >= the
     engine's (auto-tuned) lookahead and the post clears the horizon. *)
  let at =
    Int64.add (Engine.now t.engine) (Int64.add seg_lat (jitter c))
  in
  ignore
    (Engine.post t.engine ~shard:sp.entry_shard ~at (fun () ->
         inject t c ~s ~through ~lat_ns))

and inject t c ~s ~through ~lat_ns =
  let sp = c.spills.(s) in
  let cell = Hashtbl.find (Hashtbl.find t.stations sp.station_node).cells c.id in
  cell.a_count <- 0;
  cell.a_bytes <- 0;
  cell.a_lat_ns <- 0L;
  let now = Engine.now t.engine in
  let src_addr = (Topology.node t.topo c.src).Topology.addr in
  for i = 0 to t.spill_pkts - 1 do
    Network.inject t.net sp.entry_node
      (Packet.make ~protocol:c.protocol ~dscp:c.dscp ~dst_port:c.dst_port
         ~flow_id:c.id ~seq:i ~sent_at:now ~app:c.app ~src:src_addr
         ~dst:sp.target t.payload)
  done;
  ignore (Atomic.fetch_and_add c.spill_sent t.spill_pkts);
  ignore (Atomic.fetch_and_add c.spilled_bytes through);
  (* Harvest at +dt/2: past every probe's intra-domain flight time,
     strictly before the next step's injection re-uses the cell. *)
  ignore
    (Engine.schedule t.engine ~delay:t.half_dt (fun () ->
         harvest t c ~s ~through ~lat_ns))

and harvest t c ~s ~through ~lat_ns =
  let sp = c.spills.(s) in
  let cell = Hashtbl.find (Hashtbl.find t.stations sp.station_node).cells c.id in
  let back = cell.a_count in
  ignore (Atomic.fetch_and_add c.spill_back back);
  let pass_ppm =
    if back >= t.spill_pkts then 1_000_000
    else back * 1_000_000 / t.spill_pkts
  in
  let passed = through * pass_ppm / 1_000_000 in
  let probe_lat =
    if back > 0 then Int64.div cell.a_lat_ns (Int64.of_int back) else 0L
  in
  if passed > 0 then
    if sp.terminal then begin
      ignore (Atomic.fetch_and_add t.box_goodput passed);
      record_delivery c ~through:passed ~lat_ns:(Int64.add lat_ns probe_lat)
    end
    else begin
      (* Re-aggregate on egress: resume as fluid at the next grid step,
         so the resumed bytes read a fully-settled load buffer. *)
      let now = Engine.now t.engine in
      let k = Int64.to_int (Int64.div now t.dt) + 1 in
      let at = Int64.mul (Int64.of_int k) t.dt in
      let wait = Int64.sub at now in
      ignore
        (Engine.schedule t.engine ~delay:wait (fun () ->
             walk t c ~step:k ~s:(s + 1) ~idx:sp.egress ~through:passed
               ~seg_lat:0L
               ~lat_ns:(Int64.add (Int64.add lat_ns probe_lat) wait)))
    end

let ensure_station t nid =
  match Hashtbl.find_opt t.stations nid with
  | Some st -> st
  | None ->
    let st = { cells = Hashtbl.create 16 } in
    Hashtbl.replace t.stations nid st;
    Network.set_handler t.net nid (fun _net _nid p ->
        match Hashtbl.find_opt st.cells p.Packet.meta.flow_id with
        | None -> ()
        | Some cell ->
          cell.a_count <- cell.a_count + 1;
          cell.a_bytes <- cell.a_bytes + Packet.size p;
          cell.a_lat_ns <-
            Int64.add cell.a_lat_ns
              (Int64.sub (Engine.now t.engine) p.Packet.meta.sent_at));
    st

let launch t =
  if t.launched then invalid_arg "Aggregate.launch: already launched";
  t.launched <- true;
  let cohorts = Array.of_list (List.rev t.cohorts_rev) in
  t.cohorts <- cohorts;
  Array.iter
    (fun c ->
      Array.iter
        (fun sp ->
          let st = ensure_station t sp.station_node in
          if not (Hashtbl.mem st.cells c.id) then
            Hashtbl.replace st.cells c.id
              { a_count = 0; a_bytes = 0; a_lat_ns = 0L })
        c.spills)
    cohorts;
  (* The ticker (shard 0) zeroes the buffer step k+1 will write. It
     outlives cohort emission by enough steps to cover every in-flight
     spill resume. *)
  let slack =
    Array.fold_left
      (fun acc c ->
        let lat_steps =
          Int64.to_int (Int64.div (Int64.mul 2L c.path_lat_ns) t.dt)
        in
        max acc (lat_steps + (3 * Array.length c.spills) + 6))
      6 cohorts
  in
  let ticks = t.steps + slack in
  let rec tick k () =
    Array.iter (fun a -> Atomic.set a 0) t.loads.((k + 1) mod 3);
    if k + 1 < ticks then
      ignore (Engine.schedule t.engine ~delay:t.dt (tick (k + 1)))
  in
  ignore (Engine.post t.engine ~shard:0 ~at:0L (tick 0));
  Array.iter
    (fun (c : cohort) ->
      let rec step k () =
        c.offered_bytes <- c.offered_bytes + c.per_step;
        walk t c ~step:k ~s:0 ~idx:0 ~through:c.per_step ~seg_lat:0L
          ~lat_ns:0L;
        if k + 1 < t.steps then
          ignore (Engine.schedule t.engine ~delay:t.dt (step (k + 1)))
      in
      ignore (Engine.post t.engine ~shard:c.shard ~at:0L (step 0)))
    cohorts

let clients t =
  if t.launched then
    Array.fold_left (fun acc (c : cohort) -> acc + c.clients) 0 t.cohorts
  else List.fold_left (fun acc (c : cohort) -> acc + c.clients) 0 t.cohorts_rev

let duration_s t = Int64.to_float t.dt *. 1e-9 *. float_of_int t.steps

let stats t =
  let z = (0, 0, 0, 0, 0, 0) in
  let off, del, spl, ps, pb, cl =
    Array.fold_left
      (fun (off, del, spl, ps, pb, cl) (c : cohort) ->
        ( off + c.offered_bytes,
          del + Atomic.get c.delivered_bytes,
          spl + Atomic.get c.spilled_bytes,
          ps + Atomic.get c.spill_sent,
          pb + Atomic.get c.spill_back,
          cl + c.clients ))
      z t.cohorts
  in
  { cohorts = Array.length t.cohorts;
    clients = cl;
    steps = t.steps;
    duration_s = duration_s t;
    offered_bytes = off;
    delivered_bytes = del;
    spilled_bytes = spl;
    spill_pkts_sent = ps;
    spill_pkts_back = pb;
    box_goodput_bytes = Atomic.get t.box_goodput
  }

let report_of t (c : cohort) =
  let delivered = Atomic.get c.delivered_bytes in
  let kb = delivered / 1024 in
  let mean_us = if kb > 0 then Atomic.get c.lat_prod / kb else 0 in
  Flow.synthetic ~flow_id:c.id ~app:c.app
    ~sent:(c.offered_bytes / t.pkt_bytes)
    ~received:(delivered / t.pkt_bytes)
    ~sent_bytes:c.offered_bytes ~received_bytes:delivered
    ~mean_latency_ms:(float_of_int mean_us /. 1000.)
    ~max_latency_ms:(float_of_int (Atomic.get c.max_lat_us) /. 1000.)
    ~jitter_ms:0. ~duration_s:(duration_s t)

let report t ~cohort =
  if cohort < 0 || cohort >= Array.length t.cohorts then None
  else Some (report_of t t.cohorts.(cohort))

let reports t = Array.to_list (Array.map (report_of t) t.cohorts)

(* Canonical digest of every cohort's final counters, folded in cohort
   order: the cross-shard-determinism witness. Read it only after
   Engine.run has returned. *)
let digest t =
  let h = ref 0x1b873593 in
  let fold v = h := Int64.to_int (mix64 (Int64.of_int (!h lxor v))) land max_int in
  Array.iter
    (fun (c : cohort) ->
      fold c.id;
      fold c.offered_bytes;
      fold (Atomic.get c.delivered_bytes);
      fold (Atomic.get c.spilled_bytes);
      fold (Atomic.get c.spill_sent);
      fold (Atomic.get c.spill_back);
      fold (Atomic.get c.lat_prod);
      fold (Atomic.get c.max_lat_us))
    t.cohorts;
  fold (Atomic.get t.box_goodput);
  !h
