(** The plain IP forwarding path a router performs with no neutralizer in
    front of it — the reference point of the paper's §4 measurement ("the
    neutralizer can only forward vanilla IP packets of the same size at
    600kpps").

    [process] performs the work a software router pays per packet: a
    longest-prefix-match FIB lookup, TTL decrement and a checksum-style
    header fold. The E2 bench runs this and the neutralizer data path on
    identical packets and reports the throughput ratio. *)

type fib

val fib_of_prefixes : (Net.Ipaddr.Prefix.t * int) list -> fib
(** Route table: prefix -> next-hop id. *)

val random_fib : entries:int -> Random.State.t -> fib
(** Synthetic FIB for benchmarks. *)

val lookup : fib -> Net.Ipaddr.t -> int option
(** Longest-prefix match. *)

val process : fib -> Net.Packet.t -> (int * Net.Packet.t) option
(** [Some (next_hop, packet')] with TTL decremented, or [None] when TTL
    expired or no route. *)

val header_fold : Net.Packet.t -> int
(** The checksum-ish touch of the header bytes, included so the vanilla
    path does honest per-packet memory work. *)
