(** The comparator of §5: anonymous routing in the style of Tor.

    "Anonymous routing aims to anonymize both the source and destination
    addresses of a packet, while our design only aims to anonymize the
    non-customer address ... As a result, our design is considerably more
    efficient and scalable in terms of resource consumption. In our
    design, routers don't keep per-flow state, and perform much fewer
    public key encryption/decryption operations."

    This module implements telescoping circuit construction over a set of
    relays — one public-key operation {e per relay per circuit} on both
    the client and relay side, plus a per-circuit state entry at {e every}
    relay — and layered AES-CTR for the data path. Experiment E4 counts
    exactly these costs against the neutralizer's (one public-key
    operation per source per master-key lifetime, zero state). *)

type relay

val create_relay : ?key:Crypto.Rsa.private_key -> id:int -> Random.State.t -> relay
(** Generates the relay's long-term RSA-1024 key unless [key] supplies a
    pregenerated one (key generation costs seconds; harnesses reuse
    fixtures). *)

val relay_id : relay -> int
val relay_state_entries : relay -> int
(** Number of live circuits — the per-flow state §5 contrasts with. *)

val relay_pubkey_ops : relay -> int
val relay_symmetric_ops : relay -> int

type circuit

val build_circuit :
  rng:(int -> string) -> path:relay list -> circuit
(** Telescoping setup: one RSA encryption per hop at the client, one RSA
    decryption at each relay, one state entry installed at each relay. *)

val client_pubkey_ops : circuit -> int

val send : circuit -> string -> string
(** Wrap a payload in one AES-CTR layer per hop (client side). *)

val relay_process : relay -> string -> [ `Forward of string | `Exit of string | `Bad ]
(** Peel one layer at a relay; [`Exit] at the last hop. *)

val transit : circuit -> string -> string option
(** Drive a payload through the whole circuit (client wrap, then each
    relay peel); [Some plaintext] on success. Used by tests and E4. *)

val teardown : circuit -> unit
(** Remove the circuit's state from every relay on the path. *)
