(* FIB as one sorted array per prefix length, longest length first. *)
type fib = (int * (int * int) array) list
(* (prefix_len, sorted [(network_int, next_hop)]) *)

let mask len = if len = 0 then 0 else 0xffffffff lxor ((1 lsl (32 - len)) - 1)

let fib_of_prefixes entries =
  let by_len = Hashtbl.create 8 in
  List.iter
    (fun (p, hop) ->
      let len = Net.Ipaddr.Prefix.length p in
      let net = Net.Ipaddr.to_int (Net.Ipaddr.Prefix.network p) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_len len) in
      Hashtbl.replace by_len len ((net, hop) :: cur))
    entries;
  Hashtbl.fold
    (fun len l acc ->
      let arr = Array.of_list l in
      Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
      (len, arr) :: acc)
    by_len []
  |> List.sort (fun (a, _) (b, _) -> Int.compare b a)

let random_fib ~entries st =
  let prefixes =
    List.init entries (fun i ->
        let len = 8 + Random.State.int st 17 in
        let addr = Net.Ipaddr.of_int (Random.State.int st 0x3fffffff * 4) in
        (Net.Ipaddr.Prefix.make addr len, i))
  in
  fib_of_prefixes ((Net.Ipaddr.Prefix.of_string "0.0.0.0/0", entries) :: prefixes)

let bsearch arr target =
  let rec go lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let k, v = arr.(mid) in
      if k = target then Some v
      else if k < target then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go 0 (Array.length arr - 1)

let lookup fib addr =
  let a = Net.Ipaddr.to_int addr in
  let rec scan = function
    | [] -> None
    | (len, arr) :: rest ->
      (match bsearch arr (a land mask len) with
       | Some hop -> Some hop
       | None -> scan rest)
  in
  scan fib

let header_fold (p : Net.Packet.t) =
  (* Fold the header fields the way a checksum update walks them. *)
  let acc =
    Net.Ipaddr.to_int p.src + Net.Ipaddr.to_int p.dst
    + (Net.Packet.protocol_number p.protocol lsl 8)
    + p.dscp + p.ttl + p.src_port + p.dst_port + Net.Packet.size p
  in
  (acc land 0xffff) + (acc lsr 16)

let process fib (p : Net.Packet.t) =
  match Net.Packet.decrement_ttl p with
  | None -> None
  | Some p ->
    (match lookup fib p.dst with
     | None -> None
     | Some hop ->
       let _csum = header_fold p in
       Some (hop, p))
