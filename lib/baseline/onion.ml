type relay = {
  id : int;
  key : Crypto.Rsa.private_key;
  circuits : (string, string) Hashtbl.t; (* circuit id -> AES key *)
  mutable pubkey_ops : int;
  mutable symmetric_ops : int;
}

let create_relay ?key ~id st =
  { id;
    key =
      (match key with
       | Some k -> k
       | None -> Crypto.Rsa.generate ~e:3 ~bits:1024 st);
    circuits = Hashtbl.create 64;
    pubkey_ops = 0;
    symmetric_ops = 0
  }

let relay_id r = r.id
let relay_state_entries r = Hashtbl.length r.circuits
let relay_pubkey_ops r = r.pubkey_ops
let relay_symmetric_ops r = r.symmetric_ops

type circuit = {
  cid : string; (* 8 bytes *)
  path : relay list;
  keys : string list; (* per hop, same order as path *)
  mutable client_pubkey_ops : int;
  rng : int -> string;
}

let cid_len = 8

let build_circuit ~rng ~path =
  if path = [] then invalid_arg "Onion.build_circuit: empty path";
  let cid = rng cid_len in
  let keys =
    List.map
      (fun relay ->
        let key = rng 16 in
        (* Client encrypts (cid, key) to the relay; the relay decrypts and
           installs per-circuit state — the §5 cost being measured. *)
        let blob =
          Crypto.Rsa.encrypt relay.key.Crypto.Rsa.public ~rng (cid ^ key)
        in
        relay.pubkey_ops <- relay.pubkey_ops + 1;
        (match Crypto.Rsa.decrypt relay.key blob with
         | Some pt when String.length pt = cid_len + 16 ->
           Hashtbl.replace relay.circuits
             (String.sub pt 0 cid_len)
             (String.sub pt cid_len 16)
         | Some _ | None -> failwith "Onion.build_circuit: internal error");
        key)
      path
  in
  let c = { cid; path; keys; client_pubkey_ops = List.length path; rng } in
  c

let client_pubkey_ops c = c.client_pubkey_ops

let layer ~rng ~key body =
  let nonce = rng 16 in
  nonce ^ Crypto.Mode.ctr ~key:(Crypto.Aes.expand_key key) ~nonce body

let send c payload =
  (* Innermost marker 'X' (exit); wrap outward so the first relay peels
     the outermost layer. *)
  let body =
    List.fold_left
      (fun inner key -> "M" ^ layer ~rng:c.rng ~key inner)
      ("X" ^ payload)
      (List.rev c.keys)
  in
  (* The first relay expects cid || wrapped. *)
  c.cid ^ String.sub body 1 (String.length body - 1)

let peel relay blob =
  if String.length blob < cid_len + 16 then None
  else begin
    let cid = String.sub blob 0 cid_len in
    match Hashtbl.find_opt relay.circuits cid with
    | None -> None
    | Some key ->
      let nonce = String.sub blob cid_len 16 in
      let ct = String.sub blob (cid_len + 16) (String.length blob - cid_len - 16) in
      relay.symmetric_ops <- relay.symmetric_ops + 1;
      Some (cid, Crypto.Mode.ctr ~key:(Crypto.Aes.expand_key key) ~nonce ct)
  end

let relay_process relay blob =
  match peel relay blob with
  | None -> `Bad
  | Some (cid, inner) ->
    if String.length inner = 0 then `Bad
    else begin
      match inner.[0] with
      | 'X' -> `Exit (String.sub inner 1 (String.length inner - 1))
      | 'M' ->
        (* Re-prefix the circuit id for the next hop. *)
        `Forward (cid ^ String.sub inner 1 (String.length inner - 1))
      | _ -> `Bad
    end

let transit c payload =
  let first = send c payload in
  let rec go blob = function
    | [] -> None
    | relay :: rest ->
      (match relay_process relay blob with
       | `Bad -> None
       | `Exit pt -> if rest = [] then Some pt else None
       | `Forward next -> go next rest)
  in
  go first c.path

let teardown c =
  List.iter (fun r -> Hashtbl.remove r.circuits c.cid) c.path
