let derive_keys secret =
  ( Aes.expand_key (Hmac.derive ~secret ~label:"seal-enc" ~length:16),
    Hmac.derive ~secret ~label:"seal-mac" ~length:16 )

let tag_len = 16

let body_sym ~rng ~secret plaintext =
  let enc_key, mac_key = derive_keys secret in
  let nonce = rng 16 in
  let ct = Mode.ctr ~key:enc_key ~nonce plaintext in
  let tag = Bytes_util.take tag_len (Hmac.mac ~key:mac_key (nonce ^ ct)) in
  nonce ^ ct ^ tag

let open_sym ~secret blob =
  if String.length blob < 16 + tag_len then None
  else begin
    let enc_key, mac_key = derive_keys secret in
    let nonce = Bytes_util.take 16 blob in
    let rest = Bytes_util.drop 16 blob in
    let ct = String.sub rest 0 (String.length rest - tag_len) in
    let tag = Bytes_util.drop (String.length rest - tag_len) rest in
    let expect = Bytes_util.take tag_len (Hmac.mac ~key:mac_key (nonce ^ ct)) in
    if Bytes_util.equal_ct tag expect then Some (Mode.ctr ~key:enc_key ~nonce ct)
    else None
  end

let seal ~rng ~pub plaintext =
  let secret = rng 32 in
  let rsa_ct = Rsa.encrypt pub ~rng secret in
  let buf = Buffer.create (String.length plaintext + 96) in
  Buffer.add_char buf 'S';
  Bytes_util.put_u32 buf (String.length rsa_ct);
  Buffer.add_string buf rsa_ct;
  Buffer.add_string buf (body_sym ~rng ~secret plaintext);
  Buffer.contents buf

let recover_secret ~priv blob =
  if String.length blob < 5 || blob.[0] <> 'S' then None
  else begin
    let ctlen = Bytes_util.get_u32 blob 1 in
    if ctlen <= 0 || 5 + ctlen > String.length blob then None
    else Rsa.decrypt priv (String.sub blob 5 ctlen)
  end

let unseal ~priv blob =
  match recover_secret ~priv blob with
  | None -> None
  | Some secret ->
    if String.length secret <> 32 then None
    else begin
      let ctlen = Bytes_util.get_u32 blob 1 in
      open_sym ~secret (Bytes_util.drop (5 + ctlen) blob)
    end

let seal_sym ~rng ~secret plaintext = body_sym ~rng ~secret plaintext
let unseal_sym ~secret blob = open_sym ~secret blob
