type key = { aes : Aes.key; k1 : string; k2 : string }

(* Doubling in GF(2^128) with the CMAC reduction constant 0x87. *)
let dbl s =
  let b = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    Bytes.set b i (Char.chr (v land 0xff));
    carry := v lsr 8
  done;
  if Char.code s.[0] land 0x80 <> 0 then
    Bytes.set b 15 (Char.chr (Char.code (Bytes.get b 15) lxor 0x87));
  Bytes.to_string b

let key k =
  let aes = Aes.expand_key k in
  let l = Aes.encrypt_block aes (String.make 16 '\x00') in
  let k1 = dbl l in
  let k2 = dbl k1 in
  { aes; k1; k2 }

let mac { aes; k1; k2 } msg =
  let len = String.length msg in
  let nblocks = if len = 0 then 1 else (len + 15) / 16 in
  let last_complete = len > 0 && len mod 16 = 0 in
  let x = ref (String.make 16 '\x00') in
  for i = 0 to nblocks - 2 do
    let block = String.sub msg (16 * i) 16 in
    x := Aes.encrypt_block aes (Bytes_util.xor !x block)
  done;
  let last =
    if last_complete then
      Bytes_util.xor (String.sub msg (16 * (nblocks - 1)) 16) k1
    else begin
      let tail = String.sub msg (16 * (nblocks - 1)) (len - (16 * (nblocks - 1))) in
      let padded = tail ^ "\x80" ^ String.make (15 - String.length tail) '\x00' in
      Bytes_util.xor padded k2
    end
  in
  Aes.encrypt_block aes (Bytes_util.xor !x last)

let mac_parts key parts = mac key (String.concat "" parts)
