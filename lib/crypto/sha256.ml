(* All word arithmetic is on native ints masked to 32 bits. *)

let m32 = 0xffffffff
let ( &: ) a b = a land b
let ( ^: ) a b = a lxor b
let add32 a b = (a + b) land m32
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land m32
let shr x n = x lsr n

let first_primes n =
  let rec go c acc k =
    if k = 0 then List.rev acc
    else begin
      let is_prime =
        let rec chk d = d * d > c || (c mod d <> 0 && chk (d + 1)) in
        chk 2
      in
      if is_prime then go (c + 1) (c :: acc) (k - 1) else go (c + 1) acc k
    end
  in
  go 2 [] n

(* frac(root) * 2^32, computed in float; validated downstream by the
   known-answer tests (any rounding slip would break them loudly). *)
let frac_bits root p =
  let r = root (float_of_int p) in
  let frac = r -. Float.of_int (int_of_float r) in
  int_of_float (frac *. 4294967296.0) land m32

let k = Array.of_list (List.map (frac_bits Float.cbrt) (first_primes 64))
let h0 = Array.of_list (List.map (frac_bits Float.sqrt) (first_primes 8))

type ctx = { h : int array; pending : string; total : int }

let init () = { h = Array.copy h0; pending = ""; total = 0 }

let compress h block off =
  let w = Array.make 64 0 in
  for t = 0 to 15 do
    w.(t) <- Bytes_util.get_u32 block (off + (4 * t))
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 ^: rotr w.(t - 15) 18 ^: shr w.(t - 15) 3 in
    let s1 = rotr w.(t - 2) 17 ^: rotr w.(t - 2) 19 ^: shr w.(t - 2) 10 in
    w.(t) <- add32 (add32 w.(t - 16) s0) (add32 w.(t - 7) s1)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 ^: rotr !e 11 ^: rotr !e 25 in
    let ch = (!e &: !f) ^: (lnot !e &: !g) in
    let t1 = add32 (add32 !hh s1) (add32 (add32 ch k.(t)) w.(t)) in
    let s0 = rotr !a 2 ^: rotr !a 13 ^: rotr !a 22 in
    let maj = (!a &: !b) ^: (!a &: !c) ^: (!b &: !c) in
    let t2 = add32 s0 maj in
    hh := !g;
    g := !f;
    f := !e;
    e := add32 !d t1;
    d := !c;
    c := !b;
    b := !a;
    a := add32 t1 t2
  done;
  h.(0) <- add32 h.(0) !a;
  h.(1) <- add32 h.(1) !b;
  h.(2) <- add32 h.(2) !c;
  h.(3) <- add32 h.(3) !d;
  h.(4) <- add32 h.(4) !e;
  h.(5) <- add32 h.(5) !f;
  h.(6) <- add32 h.(6) !g;
  h.(7) <- add32 h.(7) !hh

let feed ctx s =
  let data = ctx.pending ^ s in
  let nblocks = String.length data / 64 in
  let h = Array.copy ctx.h in
  for i = 0 to nblocks - 1 do
    compress h data (64 * i)
  done;
  { h;
    pending = String.sub data (64 * nblocks) (String.length data - (64 * nblocks));
    total = ctx.total + String.length s
  }

let finalize ctx =
  let bitlen = ctx.total * 8 in
  let padlen =
    let r = (String.length ctx.pending + 1 + 8) mod 64 in
    if r = 0 then 0 else 64 - r
  in
  let tail = Buffer.create 72 in
  Buffer.add_char tail '\x80';
  Buffer.add_string tail (String.make padlen '\x00');
  Bytes_util.put_u32 tail (bitlen lsr 32);
  Bytes_util.put_u32 tail (bitlen land m32);
  let ctx = feed { ctx with total = 0 } (Buffer.contents tail) in
  assert (ctx.pending = "");
  let out = Buffer.create 32 in
  Array.iter (Bytes_util.put_u32 out) ctx.h;
  Buffer.contents out

let digest msg = finalize (feed (init ()) msg)
let digest_hex msg = Bytes_util.to_hex (digest msg)
