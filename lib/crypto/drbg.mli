(** A deterministic random bit generator in the style of CTR_DRBG
    (NIST SP 800-90A, simplified): AES-128 in counter mode over an
    internal key/counter state, rekeyed after every generate call.

    Hosts and neutralizers in the simulation each own a DRBG so that runs
    are reproducible from a seed while nonces and one-time keys remain
    unpredictable to the simulated adversary. *)

type t

val create : seed:string -> t
(** [create ~seed] accepts any seed length; it is conditioned through
    SHA-256. *)

val generate : t -> int -> string
(** [generate t n] returns [n] fresh bytes and advances the state. *)

val reseed : t -> string -> unit
(** [reseed t entropy] mixes additional entropy into the state. *)

val random_state : t -> Random.State.t
(** [random_state t] seeds a stdlib PRNG from the DRBG, for callers (prime
    generation, workload draws) that want the [Random.State] interface. *)
