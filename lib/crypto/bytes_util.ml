let xor a b =
  if String.length a <> String.length b then
    invalid_arg "Bytes_util.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let xor_prefix a b =
  if String.length b < String.length a then
    invalid_arg "Bytes_util.xor_prefix: second operand too short";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let equal_ct a b =
  String.length a = String.length b
  && begin
    let acc = ref 0 in
    String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
    !acc = 0
  end

let to_hex s =
  let hexdig = "0123456789abcdef" in
  String.init (2 * String.length s) (fun i ->
      let b = Char.code s.[i / 2] in
      hexdig.[if i land 1 = 0 then b lsr 4 else b land 0xf])

let of_hex s =
  if String.length s land 1 = 1 then invalid_arg "Bytes_util.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytes_util.of_hex: bad digit"
  in
  String.init (String.length s / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let take n s =
  if String.length s < n then invalid_arg "Bytes_util.take: too short";
  String.sub s 0 n

let drop n s =
  if String.length s < n then invalid_arg "Bytes_util.drop: too short";
  String.sub s n (String.length s - n)

let pad_block s =
  let pad = 16 - (String.length s mod 16) in
  s ^ "\x80" ^ String.make (pad - 1) '\x00'

let unpad_block s =
  let rec find i =
    if i < 0 then None
    else
      match s.[i] with
      | '\x00' -> find (i - 1)
      | '\x80' -> Some (String.sub s 0 i)
      | _ -> None
  in
  find (String.length s - 1)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]
