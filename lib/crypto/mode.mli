(** Block cipher modes of operation over {!Aes}. *)

(** [ctr ~key ~nonce s] encrypts or decrypts [s] (any length) with AES-CTR.
    [nonce] is 16 bytes and must be unique per key; the low 32 bits are the
    running block counter. CTR is its own inverse. *)
val ctr : key:Aes.key -> nonce:string -> string -> string

(** [cbc_encrypt ~key ~iv s]: [s] is padded (ISO 7816-4) to a block
    multiple. [iv] is 16 bytes. *)
val cbc_encrypt : key:Aes.key -> iv:string -> string -> string

(** [cbc_decrypt ~key ~iv s] returns [None] on a malformed length or
    padding. *)
val cbc_decrypt : key:Aes.key -> iv:string -> string -> string option

(** [ecb_encrypt ~key s] / [ecb_decrypt ~key s] on exact block multiples;
    used only as a primitive by tests and the DRBG. *)
val ecb_encrypt : key:Aes.key -> string -> string

val ecb_decrypt : key:Aes.key -> string -> string
