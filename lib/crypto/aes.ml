let block_size = 16
let key_size = 16

(* GF(2^8) with the AES reduction polynomial x^8 + x^4 + x^3 + x + 1. *)
let gf_mul a b =
  let rec go a b acc =
    if b = 0 then acc
    else begin
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x11b) land 0xff else (a lsl 1) land 0xff in
      go a (b lsr 1) acc
    end
  in
  go a b 0

(* Multiplicative inverse by Fermat: a^254 in GF(2^8); inverse of 0 is 0. *)
let gf_inv a =
  let rec pow a n acc =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then gf_mul acc a else acc in
      pow (gf_mul a a) (n lsr 1) acc
    end
  in
  if a = 0 then 0 else pow a 254 1

let sbox =
  let rotl8 b k = ((b lsl k) lor (b lsr (8 - k))) land 0xff in
  Array.init 256 (fun x ->
      let b = gf_inv x in
      b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

(* T-tables for the encryption fast path: Te_r[x] packs the MixColumns
   contribution of an S-boxed byte arriving from state row [r] into one
   32-bit column word (big-endian, row 0 in the high byte). *)
let te0 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      (gf_mul s 2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor gf_mul s 3)

let te1 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      (gf_mul s 3 lsl 24) lor (gf_mul s 2 lsl 16) lor (s lsl 8) lor s)

let te2 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      (s lsl 24) lor (gf_mul s 3 lsl 16) lor (gf_mul s 2 lsl 8) lor s)

let te3 =
  Array.init 256 (fun x ->
      let s = sbox.(x) in
      (s lsl 24) lor (s lsl 16) lor (gf_mul s 3 lsl 8) lor gf_mul s 2)

type key = {
  rkw : int array; (* round keys as 44 big-endian column words *)
  rk : int array array option Atomic.t;
      (* byte-level round keys, only needed by decryption and the
         reference implementation; the encrypt fast path never pays for
         them. An Atomic rather than a Lazy: forcing a Lazy from two
         domains at once raises Lazy.Undefined, and a key is shared
         across domains by the parallel batch planes. The compute is
         pure and idempotent, so racing domains that both build the
         table agree; the CAS publishes one fully-built copy. *)
}

(* Op counts (family [crypto.aes]): one increment per public operation,
   cheap enough for the per-packet fast path. *)
let c_expansions =
  Obs.Registry.counter Obs.Registry.default "crypto.aes.key_expansions"
let c_enc_blocks =
  Obs.Registry.counter Obs.Registry.default "crypto.aes.blocks_encrypted"
let c_dec_blocks =
  Obs.Registry.counter Obs.Registry.default "crypto.aes.blocks_decrypted"

let expand_key k =
  if String.length k <> key_size then invalid_arg "Aes.expand_key: need 16 bytes";
  Obs.Counter.inc c_expansions;
  (* AES-128 expands 4 key words to 44, here packed as 32-bit ints. *)
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code k.[4 * i] lsl 24)
      lor (Char.code k.[(4 * i) + 1] lsl 16)
      lor (Char.code k.[(4 * i) + 2] lsl 8)
      lor Char.code k.[(4 * i) + 3]
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let prev = w.(i - 1) in
    let t =
      if i mod 4 = 0 then begin
        (* RotWord then SubWord then the round constant. *)
        let rot = ((prev lsl 8) lor (prev lsr 24)) land 0xffffffff in
        let sub =
          (sbox.(rot lsr 24) lsl 24)
          lor (sbox.((rot lsr 16) land 0xff) lsl 16)
          lor (sbox.((rot lsr 8) land 0xff) lsl 8)
          lor sbox.(rot land 0xff)
        in
        let out = sub lxor (!rcon lsl 24) in
        rcon := gf_mul !rcon 2;
        out
      end
      else prev
    in
    w.(i) <- w.(i - 4) lxor t
  done;
  { rkw = w; rk = Atomic.make None }

(* Byte-level round keys, built on first use by decryption or the
   reference encryptor. Pure function of [rkw], so concurrent builders
   compute identical tables; whoever wins the CAS publishes, losers use
   their own copy (equally valid). *)
let round_keys k =
  match Atomic.get k.rk with
  | Some rk -> rk
  | None ->
      let rk =
        Array.init 11 (fun r ->
            Array.init 16 (fun j ->
                (k.rkw.((4 * r) + (j / 4)) lsr (8 * (3 - (j mod 4)))) land 0xff))
      in
      if Atomic.compare_and_set k.rk None (Some rk) then rk
      else
        (match Atomic.get k.rk with Some rk' -> rk' | None -> rk)

(* State layout: state.(r + 4*c) = byte r of column c (FIPS 197 order:
   input byte i goes to row i mod 4, column i / 4). *)

let add_round_key st rk =
  for i = 0 to 15 do
    st.(i) <- st.(i) lxor rk.(i)
  done

let sub_bytes st box =
  for i = 0 to 15 do
    st.(i) <- box.(st.(i))
  done

let shift_rows st =
  (* Row r rotates left by r positions. *)
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> st.(r + (4 * c))) in
    for c = 0 to 3 do
      st.(r + (4 * c)) <- row.((c + r) mod 4)
    done
  done

let inv_shift_rows st =
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> st.(r + (4 * c))) in
    for c = 0 to 3 do
      st.(r + (4 * c)) <- row.((c - r + 4) mod 4)
    done
  done

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gf_mul a0 2 lxor gf_mul a1 3 lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor gf_mul a1 2 lxor gf_mul a2 3 lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor gf_mul a2 2 lxor gf_mul a3 3;
    st.((4 * c) + 3) <- gf_mul a0 3 lxor a1 lxor a2 lxor gf_mul a3 2
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gf_mul a0 0xe lxor gf_mul a1 0xb lxor gf_mul a2 0xd lxor gf_mul a3 9;
    st.((4 * c) + 1) <- gf_mul a0 9 lxor gf_mul a1 0xe lxor gf_mul a2 0xb lxor gf_mul a3 0xd;
    st.((4 * c) + 2) <- gf_mul a0 0xd lxor gf_mul a1 9 lxor gf_mul a2 0xe lxor gf_mul a3 0xb;
    st.((4 * c) + 3) <- gf_mul a0 0xb lxor gf_mul a1 0xd lxor gf_mul a2 9 lxor gf_mul a3 0xe
  done

let state_of_string s = Array.init 16 (fun i -> Char.code s.[i])
let string_of_state st = String.init 16 (fun i -> Char.chr st.(i))

let encrypt_block_reference key block =
  let rk = round_keys key in
  if String.length block <> block_size then
    invalid_arg "Aes.encrypt_block: need 16 bytes";
  let st = state_of_string block in
  add_round_key st rk.(0);
  for round = 1 to 9 do
    sub_bytes st sbox;
    shift_rows st;
    mix_columns st;
    add_round_key st rk.(round)
  done;
  sub_bytes st sbox;
  shift_rows st;
  add_round_key st rk.(10);
  string_of_state st

let encrypt_bytes { rkw; _ } ~src ~dst =
  if Bytes.length src <> block_size then
    invalid_arg "Aes.encrypt_bytes: src needs 16 bytes";
  if Bytes.length dst <> block_size then
    invalid_arg "Aes.encrypt_bytes: dst needs 16 bytes";
  Obs.Counter.inc c_enc_blocks;
  let word off =
    (Char.code (Bytes.unsafe_get src off) lsl 24)
    lor (Char.code (Bytes.unsafe_get src (off + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get src (off + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get src (off + 3))
  in
  let c0 = ref (word 0 lxor rkw.(0))
  and c1 = ref (word 4 lxor rkw.(1))
  and c2 = ref (word 8 lxor rkw.(2))
  and c3 = ref (word 12 lxor rkw.(3)) in
  for round = 1 to 9 do
    let t0 =
      te0.(!c0 lsr 24)
      lxor te1.((!c1 lsr 16) land 0xff)
      lxor te2.((!c2 lsr 8) land 0xff)
      lxor te3.(!c3 land 0xff)
      lxor rkw.(4 * round)
    and t1 =
      te0.(!c1 lsr 24)
      lxor te1.((!c2 lsr 16) land 0xff)
      lxor te2.((!c3 lsr 8) land 0xff)
      lxor te3.(!c0 land 0xff)
      lxor rkw.((4 * round) + 1)
    and t2 =
      te0.(!c2 lsr 24)
      lxor te1.((!c3 lsr 16) land 0xff)
      lxor te2.((!c0 lsr 8) land 0xff)
      lxor te3.(!c1 land 0xff)
      lxor rkw.((4 * round) + 2)
    and t3 =
      te0.(!c3 lsr 24)
      lxor te1.((!c0 lsr 16) land 0xff)
      lxor te2.((!c1 lsr 8) land 0xff)
      lxor te3.(!c2 land 0xff)
      lxor rkw.((4 * round) + 3)
    in
    c0 := t0;
    c1 := t1;
    c2 := t2;
    c3 := t3
  done;
  (* Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns. *)
  let final w0 w1 w2 w3 rk =
    ((sbox.(w0 lsr 24) lsl 24)
    lor (sbox.((w1 lsr 16) land 0xff) lsl 16)
    lor (sbox.((w2 lsr 8) land 0xff) lsl 8)
    lor sbox.(w3 land 0xff))
    lxor rk
  in
  let o0 = final !c0 !c1 !c2 !c3 rkw.(40)
  and o1 = final !c1 !c2 !c3 !c0 rkw.(41)
  and o2 = final !c2 !c3 !c0 !c1 rkw.(42)
  and o3 = final !c3 !c0 !c1 !c2 rkw.(43) in
  (* [src] may alias [dst]: all reads happened above. *)
  let put off v =
    Bytes.unsafe_set dst off (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set dst (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set dst (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set dst (off + 3) (Char.unsafe_chr (v land 0xff))
  in
  put 0 o0;
  put 4 o1;
  put 8 o2;
  put 12 o3

let encrypt_block key block =
  if String.length block <> block_size then
    invalid_arg "Aes.encrypt_block: need 16 bytes";
  let dst = Bytes.create block_size in
  encrypt_bytes key ~src:(Bytes.unsafe_of_string block) ~dst;
  Bytes.unsafe_to_string dst

let decrypt_block key block =
  let rk = round_keys key in
  if String.length block <> block_size then
    invalid_arg "Aes.decrypt_block: need 16 bytes";
  Obs.Counter.inc c_dec_blocks;
  let st = state_of_string block in
  add_round_key st rk.(10);
  inv_shift_rows st;
  sub_bytes st inv_sbox;
  for round = 9 downto 1 do
    add_round_key st rk.(round);
    inv_mix_columns st;
    inv_shift_rows st;
    sub_bytes st inv_sbox
  done;
  add_round_key st rk.(0);
  string_of_state st
