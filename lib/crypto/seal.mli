(** Hybrid public-key envelopes: RSA-encrypted 32-byte secret, AES-CTR
    body, HMAC-SHA256 tag. The "standard end-to-end encryption techniques
    (e.g., IPsec)" that the paper uses as a black box (§3.1) — this is our
    concrete instantiation.

    [seal]/[unseal] open a fresh secret per message; the symmetric
    variants reuse an established secret (e.g. for a response on the same
    exchange, or an ongoing session). *)

val seal : rng:(int -> string) -> pub:Rsa.public -> string -> string
(** Raises [Invalid_argument] if the RSA modulus is too small for the
    32-byte secret (needs >= 43 bytes, i.e. >= 344-bit keys). *)

val unseal : priv:Rsa.private_key -> string -> string option

val seal_sym : rng:(int -> string) -> secret:string -> string -> string
(** [secret] is the 32-byte value recovered by the receiving side. *)

val unseal_sym : secret:string -> string -> string option

val recover_secret : priv:Rsa.private_key -> string -> string option
(** The secret inside a [seal] envelope, so the receiver can answer with
    {!seal_sym}. *)
