(** AES-CMAC (RFC 4493).

    This is the keyed hash the neutralizer uses to derive per-source
    symmetric keys: [Ks = CMAC(K_M, nonce || srcIP)] instantiates the
    paper's [Ks = hash(K_M, nonce, srcIP)] with a 128-bit-AES keyed hash
    exactly as §4 describes. *)

type key

val key : string -> key
(** [key k] with [k] of 16 bytes. *)

val mac : key -> string -> string
(** [mac key msg] is the 16-byte tag over a message of any length. *)

val mac_parts : key -> string list -> string
(** [mac_parts key parts] is [mac key (String.concat "" parts)] without the
    intermediate concatenation being part of the contract — convenient for
    tuple-style inputs such as [(nonce, srcIP)]. *)
