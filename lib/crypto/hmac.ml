let block_size = 64

let mac ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let key = key ^ String.make (block_size - String.length key) '\x00' in
  let ipad = Bytes_util.xor key (String.make block_size '\x36') in
  let opad = Bytes_util.xor key (String.make block_size '\x5c') in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let mac_hex ~key msg = Bytes_util.to_hex (mac ~key msg)

let derive ~secret ~label ~length =
  let buf = Buffer.create length in
  let counter = ref 0 in
  while Buffer.length buf < length do
    incr counter;
    Buffer.add_string buf
      (mac ~key:secret (label ^ String.make 1 (Char.chr !counter)))
  done;
  String.sub (Buffer.contents buf) 0 length
