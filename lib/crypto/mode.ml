let incr_counter b =
  (* Increment the low 32 bits (big-endian) of a 16-byte counter block,
     in place. *)
  let rec bump i =
    if i >= 12 then begin
      let v = (Char.code (Bytes.get b i) + 1) land 0xff in
      Bytes.set b i (Char.chr v);
      if v = 0 then bump (i - 1)
    end
  in
  bump 15

let ctr ~key ~nonce s =
  if String.length nonce <> Aes.block_size then
    invalid_arg "Mode.ctr: nonce must be 16 bytes";
  let len = String.length s in
  let out = Bytes.create len in
  (* Two scratch blocks for the whole message: the running counter and the
     keystream block it encrypts to. No per-block allocation. *)
  let counter = Bytes.of_string nonce in
  let ks = Bytes.create Aes.block_size in
  let off = ref 0 in
  while !off < len do
    Aes.encrypt_bytes key ~src:counter ~dst:ks;
    let n = min Aes.block_size (len - !off) in
    for i = 0 to n - 1 do
      Bytes.unsafe_set out (!off + i)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get s (!off + i))
           lxor Char.code (Bytes.unsafe_get ks i)))
    done;
    incr_counter counter;
    off := !off + n
  done;
  Bytes.unsafe_to_string out

let ecb_encrypt ~key s =
  if String.length s mod Aes.block_size <> 0 then
    invalid_arg "Mode.ecb_encrypt: not a block multiple";
  let blocks = String.length s / Aes.block_size in
  let buf = Buffer.create (String.length s) in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf
      (Aes.encrypt_block key (String.sub s (16 * i) 16))
  done;
  Buffer.contents buf

let ecb_decrypt ~key s =
  if String.length s mod Aes.block_size <> 0 then
    invalid_arg "Mode.ecb_decrypt: not a block multiple";
  let blocks = String.length s / Aes.block_size in
  let buf = Buffer.create (String.length s) in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf
      (Aes.decrypt_block key (String.sub s (16 * i) 16))
  done;
  Buffer.contents buf

let cbc_encrypt ~key ~iv s =
  if String.length iv <> Aes.block_size then
    invalid_arg "Mode.cbc_encrypt: iv must be 16 bytes";
  let s = Bytes_util.pad_block s in
  let blocks = String.length s / Aes.block_size in
  let out = Bytes.create (String.length s) in
  (* [x] holds plaintext-xor-chain for the current block; the cipher block
     is written straight into [out] and chained from there. *)
  let x = Bytes.of_string iv in
  for i = 0 to blocks - 1 do
    for j = 0 to 15 do
      Bytes.unsafe_set x j
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get x j)
           lxor Char.code (String.unsafe_get s ((16 * i) + j))))
    done;
    Aes.encrypt_bytes key ~src:x ~dst:x;
    Bytes.blit x 0 out (16 * i) 16
  done;
  Bytes.unsafe_to_string out

let cbc_decrypt ~key ~iv s =
  if String.length iv <> Aes.block_size then
    invalid_arg "Mode.cbc_decrypt: iv must be 16 bytes";
  if String.length s = 0 || String.length s mod Aes.block_size <> 0 then None
  else begin
    let blocks = String.length s / Aes.block_size in
    let buf = Buffer.create (String.length s) in
    let prev = ref iv in
    for i = 0 to blocks - 1 do
      let c = String.sub s (16 * i) 16 in
      Buffer.add_string buf (Bytes_util.xor (Aes.decrypt_block key c) !prev);
      prev := c
    done;
    Bytes_util.unpad_block (Buffer.contents buf)
  end
