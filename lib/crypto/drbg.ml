type t = { mutable key : Aes.key; mutable counter : string }

let split32 s = (Bytes_util.take 16 s, String.sub s 16 16)

let create ~seed =
  let material = Sha256.digest ("nn-drbg-init" ^ seed) in
  let k, c = split32 material in
  { key = Aes.expand_key k; counter = c }

let bump t =
  let b = Bytes.of_string t.counter in
  let rec go i =
    if i >= 0 then begin
      let v = (Char.code (Bytes.get b i) + 1) land 0xff in
      Bytes.set b i (Char.chr v);
      if v = 0 then go (i - 1)
    end
  in
  go 15;
  t.counter <- Bytes.to_string b

let block t =
  bump t;
  Aes.encrypt_block t.key t.counter

let rekey t =
  let k = block t in
  let c = block t in
  t.key <- Aes.expand_key k;
  t.counter <- c

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (block t)
  done;
  rekey t;
  String.sub (Buffer.contents buf) 0 n

let reseed t entropy =
  let material = Sha256.digest (generate t 16 ^ entropy) in
  let k, c = split32 material in
  t.key <- Aes.expand_key k;
  t.counter <- c

let random_state t =
  let ints = Array.init 8 (fun _ -> Bytes_util.get_u32 (generate t 4) 0) in
  Random.State.make ints
