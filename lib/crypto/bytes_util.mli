(** Small helpers shared by the crypto modules. All values are immutable
    [string]s treated as octet strings. *)

(** [xor a b] is the bytewise XOR; raises [Invalid_argument] when lengths
    differ. *)
val xor : string -> string -> string

(** [xor_prefix a b] is [a] XORed with the first [length a] bytes of [b];
    raises [Invalid_argument] when [b] is shorter than [a]. Saves the
    caller a [String.sub] when the mask is longer than the data. *)
val xor_prefix : string -> string -> string

(** [equal_ct a b] compares in time independent of the position of the
    first difference (lengths are still revealed). *)
val equal_ct : string -> string -> bool

val to_hex : string -> string

(** [of_hex s] decodes lowercase or uppercase hex; raises
    [Invalid_argument] on odd length or bad digits. *)
val of_hex : string -> string

(** [take n s] / [drop n s]: prefix and suffix split helpers; raise
    [Invalid_argument] when [s] is shorter than [n]. *)
val take : int -> string -> string

val drop : int -> string -> string

(** [pad_block s] appends ISO 7816-4 padding (0x80 then zeros) up to the
    next 16-byte boundary; [unpad_block] reverses it, returning [None] on
    malformed padding. *)
val pad_block : string -> string

val unpad_block : string -> string option

(** 32-bit big-endian integer codecs used by packet formats. *)
val put_u32 : Buffer.t -> int -> unit

val get_u32 : string -> int -> int
