(** HMAC-SHA256 (RFC 2104), used as the PRF for end-to-end session key
    derivation. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte tag; keys of any length. *)

val mac_hex : key:string -> string -> string

(** [derive ~secret ~label ~length] expands [secret] into [length] bytes of
    key material using counter-mode HMAC (a simplified HKDF-Expand). *)
val derive : secret:string -> label:string -> length:int -> string
