(** AES-128 block cipher (FIPS 197).

    The S-box and round constants are derived from the GF(2^8) definition
    at module initialisation rather than transcribed, and the
    implementation is validated against the FIPS 197 appendix vectors in
    the test suite. This is the cipher the paper's neutralizer uses for
    both its keyed hash and its address encryption ("our implementation
    uses 128-bit AES for both hashing and encryption/decryption", §4). *)

type key
(** An expanded key is immutable apart from a write-once atomic cache of
    decrypt-side round keys, so one [key] may be shared freely across
    domains: concurrent [encrypt_*] / [decrypt_block] calls are safe and
    deterministic. *)

(** [expand_key k] precomputes the round keys. [k] must be 16 bytes. *)
val expand_key : string -> key

(** [encrypt_block key block] / [decrypt_block key block]: [block] must be
    exactly 16 bytes. *)
val encrypt_block : key -> string -> string

val decrypt_block : key -> string -> string

(** [encrypt_bytes key ~src ~dst] is the allocation-free form of
    {!encrypt_block}: both buffers must be exactly 16 bytes, and [src] may
    alias [dst]. This is the datapath hot-path entry point — the string
    variant is a thin wrapper around it. *)
val encrypt_bytes : key -> src:Bytes.t -> dst:Bytes.t -> unit

(** Byte-wise reference implementation of encryption, kept for
    cross-checking the T-table fast path in property tests. *)
val encrypt_block_reference : key -> string -> string

val block_size : int
val key_size : int
