module Nat = Bignum.Nat
module Modular = Bignum.Modular
module Prime = Bignum.Prime

(* Op counts for the evaluation: family crypto.rsa.* in the global
   registry. Counted at the public-operation level, not per Montgomery
   step. *)
let c_keygens = Obs.Registry.counter Obs.Registry.default "crypto.rsa.keygens"
let c_encrypts = Obs.Registry.counter Obs.Registry.default "crypto.rsa.encrypts"
let c_decrypts = Obs.Registry.counter Obs.Registry.default "crypto.rsa.decrypts"
let c_signs = Obs.Registry.counter Obs.Registry.default "crypto.rsa.signs"
let c_verifies = Obs.Registry.counter Obs.Registry.default "crypto.rsa.verifies"

type public = { n : Nat.t; e : Nat.t; bits : int }

type private_key = {
  public : public;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
  dp : Nat.t;
  dq : Nat.t;
  qinv : Nat.t;
}

let generate ?(e = 3) ~bits state =
  if bits < 128 then invalid_arg "Rsa.generate: modulus too small";
  let e_nat = Nat.of_int e in
  let half = bits / 2 in
  let rec attempt () =
    let p = Prime.generate_coprime_pred ~bits:(bits - half) ~e:e_nat state in
    let q = Prime.generate_coprime_pred ~bits:half ~e:e_nat state in
    if Nat.equal p q then attempt ()
    else begin
      let n = Nat.mul p q in
      if Nat.bit_length n <> bits then attempt ()
      else begin
        let p1 = Nat.pred p and q1 = Nat.pred q in
        let phi = Nat.mul p1 q1 in
        match Modular.inverse e_nat phi with
        | None -> attempt ()
        | Some d ->
          let dp = Nat.rem d p1 and dq = Nat.rem d q1 in
          (match Modular.inverse q p with
           | None -> attempt ()
           | Some qinv ->
             { public = { n; e = e_nat; bits }; d; p; q; dp; dq; qinv })
      end
    end
  in
  let key = attempt () in
  Obs.Counter.inc c_keygens;
  key

let modulus_bytes pub = (pub.bits + 7) / 8
let min_pad = 11
let max_payload pub = modulus_bytes pub - min_pad

let encrypt_raw pub m = Modular.pow_mod m pub.e pub.n

let decrypt_raw priv c =
  (* CRT: m1 = c^dp mod p, m2 = c^dq mod q, m = m2 + q*(qinv*(m1-m2) mod p) *)
  let m1 = Modular.pow_mod c priv.dp priv.p in
  let m2 = Modular.pow_mod c priv.dq priv.q in
  let h = Modular.mul_mod priv.qinv (Modular.sub_mod m1 m2 priv.p) priv.p in
  Nat.add m2 (Nat.mul priv.q h)

let nonzero_random_bytes rng n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    String.iter
      (fun c -> if c <> '\x00' && Buffer.length buf < n then Buffer.add_char buf c)
      (rng (n + 8))
  done;
  Buffer.contents buf

let encrypt pub ~rng msg =
  Obs.Counter.inc c_encrypts;
  let k = modulus_bytes pub in
  if String.length msg > max_payload pub then
    invalid_arg "Rsa.encrypt: message too long";
  let ps = nonzero_random_bytes rng (k - 3 - String.length msg) in
  let em = "\x00\x02" ^ ps ^ "\x00" ^ msg in
  Nat.to_bytes_be ~len:k (encrypt_raw pub (Nat.of_bytes_be em))

let decrypt priv ct =
  Obs.Counter.inc c_decrypts;
  let k = modulus_bytes priv.public in
  if String.length ct <> k then None
  else begin
    let c = Nat.of_bytes_be ct in
    if Nat.compare c priv.public.n >= 0 then None
    else begin
      let em = Nat.to_bytes_be ~len:k (decrypt_raw priv c) in
      if String.length em < min_pad || em.[0] <> '\x00' || em.[1] <> '\x02' then
        None
      else begin
        match String.index_from_opt em 2 '\x00' with
        | Some i when i >= 10 ->
          Some (String.sub em (i + 1) (String.length em - i - 1))
        | Some _ | None -> None
      end
    end
  end

(* EMSA-PKCS1-v1.5 over SHA-256, with a short fixed prefix instead of the
   full DER DigestInfo — adequate for intra-simulation authenticity. *)
let emsa pub msg =
  let k = modulus_bytes pub in
  let digest_info = "sha256:" ^ Sha256.digest msg in
  let pslen = k - 3 - String.length digest_info in
  if pslen < 0 then invalid_arg "Rsa.sign: modulus too small for digest";
  "\x00\x01" ^ String.make pslen '\xff' ^ "\x00" ^ digest_info

let sign priv msg =
  Obs.Counter.inc c_signs;
  let k = modulus_bytes priv.public in
  let em = emsa priv.public msg in
  Nat.to_bytes_be ~len:k (decrypt_raw priv (Nat.of_bytes_be em))

let verify pub ~msg ~signature =
  Obs.Counter.inc c_verifies;
  let k = modulus_bytes pub in
  String.length signature = k
  && begin
    let s = Nat.of_bytes_be signature in
    Nat.compare s pub.n < 0
    && begin
      let em = Nat.to_bytes_be ~len:k (encrypt_raw pub s) in
      Bytes_util.equal_ct em (emsa pub msg)
    end
  end

let public_to_string pub =
  let buf = Buffer.create 80 in
  Bytes_util.put_u32 buf pub.bits;
  let nb = Nat.to_bytes_be ~len:(modulus_bytes pub) pub.n in
  Bytes_util.put_u32 buf (String.length nb);
  Buffer.add_string buf nb;
  let eb = Nat.to_bytes_be pub.e in
  Bytes_util.put_u32 buf (String.length eb);
  Buffer.add_string buf eb;
  Buffer.contents buf

let public_of_string s =
  let len = String.length s in
  if len < 12 then None
  else begin
    let bits = Bytes_util.get_u32 s 0 in
    let nlen = Bytes_util.get_u32 s 4 in
    if len < 8 + nlen + 4 then None
    else begin
      let n = Nat.of_bytes_be (String.sub s 8 nlen) in
      let elen = Bytes_util.get_u32 s (8 + nlen) in
      if len < 8 + nlen + 4 + elen || elen = 0 then None
      else begin
        let e = Nat.of_bytes_be (String.sub s (12 + nlen) elen) in
        if Nat.is_zero n || Nat.is_zero e || bits <= 0 || bits > 65536 then None
        else Some { n; e; bits }
      end
    end
  end
