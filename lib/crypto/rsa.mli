(** RSA over {!Bignum}, shaped for the paper's protocol.

    The neutralizer design (§3.2) deliberately uses {e short one-time
    512-bit keys with public exponent 3}: encryption at the neutralizer is
    then two modular multiplications, and the key's 56-bit-symmetric-
    equivalent strength is acceptable because each key protects a single
    (nonce, Ks) pair for roughly two round-trip times. End-to-end
    encryption uses ordinary 1024-bit keys. Both are textbook-RSA with
    PKCS#1 v1.5-style random padding; like the paper, we treat
    chosen-ciphertext hardening as out of scope.

    Keys are immutable and every operation is pure given its [rng], so
    one key may be used from several domains concurrently — each worker
    of a parallel key-setup batch must simply bring its own [rng]
    stream (see {!Core.Setup_batch} for the split-before-fan-out
    pattern). *)

type public = { n : Bignum.Nat.t; e : Bignum.Nat.t; bits : int }

type private_key = {
  public : public;
  d : Bignum.Nat.t;
  p : Bignum.Nat.t;
  q : Bignum.Nat.t;
  dp : Bignum.Nat.t;
  dq : Bignum.Nat.t;
  qinv : Bignum.Nat.t;
}

(** [generate ?e ~bits state] generates a fresh key pair. [e] defaults to
    3. Raises [Invalid_argument] for [bits < 128]. *)
val generate : ?e:int -> bits:int -> Random.State.t -> private_key

(** Size in bytes of the modulus; ciphertexts are exactly this long. *)
val modulus_bytes : public -> int

(** Maximum plaintext length accepted by {!encrypt}. *)
val max_payload : public -> int

(** [encrypt pub ~rng msg] applies EME-PKCS1-v1.5 padding with nonzero
    random bytes drawn from [rng n] and encrypts. Raises
    [Invalid_argument] if [msg] exceeds {!max_payload}. *)
val encrypt : public -> rng:(int -> string) -> string -> string

(** [decrypt priv ct] returns [None] on wrong length or bad padding. *)
val decrypt : private_key -> string -> string option

(** Raw exponentiation on integers in [[0, n)] — the primitive the
    benches measure (one [encrypt_raw] is what the neutralizer pays per
    key-setup packet). *)
val encrypt_raw : public -> Bignum.Nat.t -> Bignum.Nat.t

val decrypt_raw : private_key -> Bignum.Nat.t -> Bignum.Nat.t

(** [sign priv msg] / [verify pub ~msg ~signature]: SHA-256 +
    EMSA-PKCS1-v1.5. Used to sign DNS bootstrap records. *)
val sign : private_key -> string -> string

val verify : public -> msg:string -> signature:string -> bool

(** Serialization of public keys for DNS KEY records and key-setup
    packets. *)
val public_to_string : public -> string

val public_of_string : string -> public option
