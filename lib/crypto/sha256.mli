(** SHA-256 (FIPS 180-4).

    Used for end-to-end session key derivation and DNS record signatures.
    The round constants are derived from the fractional parts of cube
    roots of the first 64 primes at initialisation and validated by RFC
    known-answer tests. *)

val digest : string -> string
(** [digest msg] is the 32-byte hash. *)

val digest_hex : string -> string

type ctx

val init : unit -> ctx
val feed : ctx -> string -> ctx
val finalize : ctx -> string
