type config = { rate : float; burst : float }

type t = {
  config : config;
  mutable tokens : float;
  mutable last_refill : int64;
  mutable granted : int;
  mutable denied : int;
}

let create config ~now =
  if config.rate < 0.0 then
    invalid_arg "Token_bucket.create: rate must be non-negative";
  if config.burst <= 0.0 then
    invalid_arg "Token_bucket.create: burst must be positive";
  { config; tokens = config.burst; last_refill = now; granted = 0; denied = 0 }

let refill t ~now =
  if Int64.compare now t.last_refill > 0 then begin
    let dt = Int64.to_float (Int64.sub now t.last_refill) *. 1e-9 in
    t.last_refill <- now;
    t.tokens <- Float.min t.config.burst (t.tokens +. (dt *. t.config.rate))
  end

let take ?(cost = 1.0) t ~now =
  refill t ~now;
  if t.tokens >= cost then begin
    t.tokens <- t.tokens -. cost;
    t.granted <- t.granted + 1;
    true
  end
  else begin
    t.denied <- t.denied + 1;
    false
  end

let tokens t ~now =
  refill t ~now;
  t.tokens

let granted t = t.granted
let denied t = t.denied
