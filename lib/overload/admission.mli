(** Priority admission control for a neutralizer box.

    The box serves two very differently priced classes: RSA key setups
    (tens of microseconds of CPU each) and AES data forwarding (a few
    microseconds). Under overload the right thing to shed first is the
    expensive class — established data traffic keeps flowing while new
    key setups queue-limit, which is exactly the degradation order §3.6's
    DoS discussion wants.

    A verdict is computed from three checks, cheapest-win first:

    + {b deadline}: a setup whose propagated deadline cannot be met even
      before paying the RSA cost ([deadline < now + backlog]) is dead on
      arrival — shedding it is free goodput.
    + {b source-rate}: a per-source-prefix token bucket (default /24,
      the same aggregate granularity as [Pushback]) bounds how much
      setup work any one neighborhood can demand.
    + {b backlog}: per-class bounds on the box's CPU backlog, with the
      setup bound far below the data bound so setups shed first.

    The verdicts carry string reasons used directly as labels on the
    [core.neutralizer.shed_total{reason,class}] metric family. *)

type klass = Setup | Data | Other

val klass_name : klass -> string
(** ["setup"], ["data"], ["other"] — metric label values. *)

type verdict = Admit | Shed of string  (** reason label *)

type config = {
  max_backlog_setup : int64;
      (** shed setups when CPU backlog exceeds this many ns; > 0 *)
  max_backlog_data : int64;
      (** shed data when CPU backlog exceeds this many ns; >= setup bound *)
  per_source_rate : float;  (** setup tokens/s per source prefix; >= 0 *)
  per_source_burst : float;  (** bucket depth per source prefix; > 0 *)
  prefix_bits : int;  (** aggregate granularity; in [0, 32] *)
}

val default : config
(** 20 ms setup backlog bound, 200 ms data bound, 200 setups/s per /24
    with burst 50. *)

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on a malformed config. *)

val admit :
  t ->
  now:int64 ->
  backlog:int64 ->
  klass:klass ->
  src:Net.Ipaddr.t ->
  ?deadline:int64 ->
  unit ->
  verdict
(** [backlog] is the box's outstanding CPU time
    ({!Net.Network.backlog}); [deadline] is the absolute expiry carried
    in the shim, [0L] (the default) meaning none. Only [Setup] work is
    charged against the per-source bucket. *)

val sheds : t -> (string * int) list
(** Shed counts by reason, sorted by reason — cheap introspection for
    experiment tables. *)
