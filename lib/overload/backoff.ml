type config = {
  base : int64;
  cap : int64;
  multiplier : float;
  jitter : float;
}

let default =
  { base = 50_000_000L; cap = 5_000_000_000L; multiplier = 2.0; jitter = 0.5 }

let validate c =
  if Int64.compare c.base 0L <= 0 then
    invalid_arg "Backoff: base must be positive";
  if Int64.compare c.cap c.base < 0 then
    invalid_arg "Backoff: cap must be >= base";
  if c.multiplier < 1.0 then invalid_arg "Backoff: multiplier must be >= 1.0";
  if c.jitter < 0.0 || c.jitter >= 1.0 then
    invalid_arg "Backoff: jitter must be in [0, 1)"

type t = { config : config; prng : Fault.Prng.t; mutable attempts : int }

let create ?(config = default) ~prng () =
  validate config;
  { config; prng; attempts = 0 }

let next t =
  let c = t.config in
  (* Capped exponential term for this attempt, computed in float to dodge
     int64 overflow on large attempt counts, then clamped. *)
  let d =
    let f = Int64.to_float c.base *. (c.multiplier ** float_of_int t.attempts) in
    if f >= Int64.to_float c.cap then c.cap else Int64.of_float f
  in
  t.attempts <- t.attempts + 1;
  (* Subtract a truncated jittered slice so the result stays within
     (d * (1 - jitter), d] — never zero, never above the cap. *)
  let slice =
    Int64.of_float (c.jitter *. Fault.Prng.float t.prng *. Int64.to_float d)
  in
  Int64.sub d slice

let reset t = t.attempts <- 0
let attempts t = t.attempts
