type config = {
  failure_threshold : int;
  open_timeout : int64;
  half_open_probes : int;
}

let default =
  { failure_threshold = 5; open_timeout = 1_000_000_000L; half_open_probes = 1 }

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  config : config;
  mutable state : state;
  mutable failures : int;  (* consecutive failures while Closed *)
  mutable opened_at : int64;  (* valid while Open *)
  mutable probes_inflight : int;  (* valid while Half_open *)
  mutable history : (int64 * state) list;  (* newest first *)
}

let create ?(config = default) ~now () =
  if config.failure_threshold <= 0 then
    invalid_arg "Breaker: failure_threshold must be positive";
  if Int64.compare config.open_timeout 0L <= 0 then
    invalid_arg "Breaker: open_timeout must be positive";
  if config.half_open_probes <= 0 then
    invalid_arg "Breaker: half_open_probes must be positive";
  {
    config;
    state = Closed;
    failures = 0;
    opened_at = 0L;
    probes_inflight = 0;
    history = [ (now, Closed) ];
  }

let transition t ~now state =
  t.state <- state;
  t.history <- (now, state) :: t.history

(* Promote Open -> Half_open once the timeout has elapsed. All entry
   points funnel through here so the timeout is observed lazily, without
   an engine timer per breaker. *)
let tick t ~now =
  match t.state with
  | Open
    when Int64.compare (Int64.sub now t.opened_at) t.config.open_timeout >= 0
    ->
      t.probes_inflight <- 0;
      transition t ~now Half_open
  | _ -> ()

let state t ~now =
  tick t ~now;
  t.state

let trip t ~now =
  t.opened_at <- now;
  t.failures <- 0;
  transition t ~now Open

let allow t ~now =
  tick t ~now;
  match t.state with
  | Closed -> true
  | Open -> false
  | Half_open ->
      if t.probes_inflight < t.config.half_open_probes then begin
        t.probes_inflight <- t.probes_inflight + 1;
        true
      end
      else false

let record_success t ~now =
  tick t ~now;
  match t.state with
  | Closed -> t.failures <- 0
  | Half_open ->
      t.failures <- 0;
      transition t ~now Closed
  | Open -> ()

let record_failure t ~now =
  tick t ~now;
  match t.state with
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.config.failure_threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> ()

let history t = List.rev t.history
