(** Capped exponential backoff with deterministic jitter.

    The k-th retry waits [min cap (base * multiplier^(k-1))] ns, minus a
    jittered fraction of itself: the returned delay lies in
    [[d - floor(jitter * d), d]] where [d] is the capped exponential
    term. Jitter draws come from a {!Fault.Prng.t} child stream, so two
    runs with equal seeds produce byte-identical retry timelines —
    overload experiments stay reproducible (OVERLOAD_SEED, see
    {!Seed.env}).

    A backoff instance only computes delays; whether a retry may be
    spent at all is the caller's retry {e budget} (a shared
    {!Token_bucket.t}), keeping the storm-control decision global to the
    client while the pacing decision stays per-destination. *)

type config = {
  base : int64;  (** first retry delay, ns; must be positive *)
  cap : int64;  (** upper bound on the un-jittered delay; >= base *)
  multiplier : float;  (** growth per attempt; must be >= 1.0 *)
  jitter : float;  (** fraction of the delay randomized away; in [0, 1) *)
}

val default : config
(** 50 ms base, 2x growth, 5 s cap, 0.5 jitter. *)

val validate : config -> unit
(** Raises [Invalid_argument] on a malformed config. *)

type t

val create : ?config:config -> prng:Fault.Prng.t -> unit -> t
(** [prng] should be a child stream ({!Fault.Prng.split}) labeled by the
    destination, so per-destination timelines are independent of one
    another and of draw order elsewhere. *)

val next : t -> int64
(** Delay before the next retry; advances the attempt counter. *)

val reset : t -> unit
(** Back to the first-attempt delay (call on success). *)

val attempts : t -> int
(** Retries handed out since the last {!reset}. *)
