type klass = Setup | Data | Other

let klass_name = function Setup -> "setup" | Data -> "data" | Other -> "other"

type verdict = Admit | Shed of string

type config = {
  max_backlog_setup : int64;
  max_backlog_data : int64;
  per_source_rate : float;
  per_source_burst : float;
  prefix_bits : int;
}

let default =
  {
    max_backlog_setup = 20_000_000L;
    max_backlog_data = 200_000_000L;
    per_source_rate = 200.0;
    per_source_burst = 50.0;
    prefix_bits = 24;
  }

type t = {
  config : config;
  buckets : (Net.Ipaddr.Prefix.t, Token_bucket.t) Hashtbl.t;
  shed_by_reason : (string, int) Hashtbl.t;
}

let create ?(config = default) () =
  if Int64.compare config.max_backlog_setup 0L <= 0 then
    invalid_arg "Admission: max_backlog_setup must be positive";
  if Int64.compare config.max_backlog_data config.max_backlog_setup < 0 then
    invalid_arg "Admission: max_backlog_data must be >= max_backlog_setup";
  if config.per_source_rate < 0.0 then
    invalid_arg "Admission: per_source_rate must be non-negative";
  if config.per_source_burst <= 0.0 then
    invalid_arg "Admission: per_source_burst must be positive";
  if config.prefix_bits < 0 || config.prefix_bits > 32 then
    invalid_arg "Admission: prefix_bits must be in [0, 32]";
  { config; buckets = Hashtbl.create 64; shed_by_reason = Hashtbl.create 4 }

let shed t reason =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.shed_by_reason reason) in
  Hashtbl.replace t.shed_by_reason reason (n + 1);
  Shed reason

let source_bucket t src ~now =
  let prefix = Net.Ipaddr.Prefix.make src t.config.prefix_bits in
  match Hashtbl.find_opt t.buckets prefix with
  | Some b -> b
  | None ->
      let b =
        Token_bucket.create
          { rate = t.config.per_source_rate; burst = t.config.per_source_burst }
          ~now
      in
      Hashtbl.replace t.buckets prefix b;
      b

let admit t ~now ~backlog ~klass ~src ?(deadline = 0L) () =
  match klass with
  | Other -> Admit
  | Data ->
      if Int64.compare backlog t.config.max_backlog_data > 0 then
        shed t "backlog"
      else Admit
  | Setup ->
      (* Dead on arrival: even with zero service time the reply would
         miss the propagated deadline once the backlog drains. *)
      if
        Int64.compare deadline 0L <> 0
        && Int64.compare deadline (Int64.add now backlog) < 0
      then shed t "deadline"
      else if not (Token_bucket.take (source_bucket t src ~now) ~now) then
        shed t "source-rate"
      else if Int64.compare backlog t.config.max_backlog_setup > 0 then
        shed t "backlog"
      else Admit

let sheds t =
  Hashtbl.fold (fun r n acc -> (r, n) :: acc) t.shed_by_reason []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
