(** Seed plumbing for reproducible overload runs. *)

val env : unit -> int
(** Read [OVERLOAD_SEED] from the environment; defaults to [1] when
    unset and fails loudly when malformed. Two runs with the same seed
    produce byte-identical experiment tables (the jitter and load
    schedules derive every draw from it via {!Fault.Prng.split}). *)
