(** A per-destination circuit breaker.

    Classic three-state machine over the simulated clock:

    - [Closed]: traffic flows; consecutive failures are counted and
      [failure_threshold] of them trip the breaker.
    - [Open]: all traffic is refused locally (fail fast, no retry storm)
      until [open_timeout] ns have elapsed.
    - [Half_open]: after the timeout, up to [half_open_probes] requests
      are let through as probes. A probe success closes the breaker; a
      probe failure re-opens it and restarts the timeout.

    The machine never moves [Open -> Closed] directly — recovery is
    always observed through a [Half_open] probe first. That invariant is
    checked by a qcheck state-machine property in
    [test/test_overload.ml], which replays arbitrary event sequences
    against {!history}.

    Clients hold one breaker per neutralizer address and intersect
    "breaker allows" with [Multihome]'s availability view when picking a
    destination. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip; > 0 *)
  open_timeout : int64;  (** ns to stay open before probing; > 0 *)
  half_open_probes : int;  (** concurrent probes allowed half-open; > 0 *)
}

val default : config
(** 5 consecutive failures, 1 s open, 1 probe. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create : ?config:config -> now:int64 -> unit -> t
(** Starts [Closed]. Raises [Invalid_argument] on a malformed config. *)

val state : t -> now:int64 -> state
(** Current state, accounting for an elapsed open timeout (an [Open]
    breaker whose timeout has passed reports — and becomes —
    [Half_open]). *)

val allow : t -> now:int64 -> bool
(** May a request be sent now? [Closed] always; [Open] never (until the
    timeout promotes it); [Half_open] only while probe slots remain —
    each grant consumes one slot until an outcome is recorded. *)

val record_success : t -> now:int64 -> unit
(** Outcome of an allowed request: clears the failure streak; a
    half-open probe success closes the breaker. *)

val record_failure : t -> now:int64 -> unit
(** Outcome of an allowed request: extends the failure streak, tripping
    the breaker at [failure_threshold]; a half-open probe failure
    re-opens immediately. *)

val history : t -> (int64 * state) list
(** Transition log, oldest first, starting with [(create_time, Closed)].
    Test hook for the state-machine property. *)
