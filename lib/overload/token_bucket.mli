(** A classic token bucket against the simulated clock.

    The bucket holds at most [burst] tokens and refills continuously at
    [rate] tokens per second of simulated time. A grant of cost [c]
    succeeds only when at least [c] tokens are present, so over any
    interval of length [t] seconds the bucket conserves work: the sum of
    granted costs never exceeds [rate * t + burst]. The conservation
    bound is a qcheck property in [test/test_overload.ml].

    Shared by the pushback controller's per-aggregate rate limits, the
    neutralizer's per-source admission control, and the client's retry
    budget — one arithmetic, three policies. *)

type config = {
  rate : float;  (** tokens per second of simulated time; must be >= 0 *)
  burst : float;  (** bucket capacity; must be > 0 *)
}

type t

val create : config -> now:int64 -> t
(** Starts full ([burst] tokens) at simulated time [now] (ns). Raises
    [Invalid_argument] on a negative rate or non-positive burst. *)

val take : ?cost:float -> t -> now:int64 -> bool
(** Refill up to [now], then spend [cost] tokens (default [1.0]) if
    available. Time never runs backwards: a [now] earlier than the last
    refill is treated as the last refill instant. *)

val tokens : t -> now:int64 -> float
(** Current token count after refilling to [now] (no spend). *)

val granted : t -> int
(** Number of successful {!take}s since creation. *)

val denied : t -> int
(** Number of refused {!take}s since creation. *)
