let env () =
  match Sys.getenv_opt "OVERLOAD_SEED" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          Printf.ksprintf failwith "OVERLOAD_SEED must be an integer, got %S" s)
